/**
 * @file
 * Shared plumbing for the bench_* binaries' report output.
 *
 * Every bench takes `--out-dir DIR` (default build/bench_out) and writes
 * two artifacts there:
 *   - METRICS_<bench>.json — the full PerfRegistry snapshot (every run,
 *     every counter; for humans and ad-hoc digging);
 *   - BENCH_<bench>.json   — the BenchReport of headline metrics that the
 *     trend store commits and trend_compare gates on.
 * The prefixes differ on purpose: trend_compare globs BENCH_*.json and
 * must not try to parse a raw metrics snapshot as a report.
 */

#ifndef RPX_BENCH_UTIL_HPP
#define RPX_BENCH_UTIL_HPP

#include <cstring>
#include <string>
#include <vector>

#include "obs/bench_report.hpp"
#include "obs/perf_registry.hpp"

namespace rpx::benchutil {

/**
 * Strip "--out-dir DIR" out of argv (google-benchmark rejects unknown
 * flags, so this must run before benchmark::Initialize). Returns the
 * directory, or `fallback` when the flag is absent.
 */
inline std::string
consumeOutDir(int &argc, char **argv,
              const std::string &fallback = "build/bench_out")
{
    std::string out = fallback;
    int w = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out-dir") == 0 && i + 1 < argc) {
            out = argv[++i];
            continue;
        }
        argv[w++] = argv[i];
    }
    argc = w;
    return out;
}

/**
 * First gauge whose name contains `contains` and ends with `suffix`.
 * Returns false (leaving `out` untouched) when absent — a filtered
 * benchmark run must not crash report assembly, just omit the metric.
 */
inline bool
findGauge(const std::vector<obs::MetricSample> &samples,
          const std::string &contains, const std::string &suffix,
          double &out)
{
    for (const obs::MetricSample &s : samples) {
        if (s.kind != obs::MetricSample::Kind::Gauge)
            continue;
        if (s.name.find(contains) == std::string::npos)
            continue;
        if (s.name.size() < suffix.size() ||
            s.name.compare(s.name.size() - suffix.size(), suffix.size(),
                           suffix) != 0)
            continue;
        out = s.value;
        return true;
    }
    return false;
}

} // namespace rpx::benchutil

#endif // RPX_BENCH_UTIL_HPP
