/**
 * @file
 * BenchReport schema round-trip and trend_compare gating semantics:
 * model metrics gate at the tight threshold, wall metrics warn unless
 * gating is requested, improvements and missing metrics are surfaced
 * without failing the comparison.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "obs/bench_report.hpp"

namespace rpx::obs {
namespace {

BenchReport
makeBaseline()
{
    BenchReport r;
    r.bench = "unit";
    r.commit = "abc123";
    r.setMetric("traffic_ratio", 0.30, "ratio", "lower", "model");
    r.setMetric("psnr_db", 40.0, "dB", "higher", "model");
    r.setMetric("throughput", 100.0, "MB/s", "higher", "wall");
    return r;
}

TEST(BenchReport, JsonRoundTrip)
{
    const BenchReport r = makeBaseline();
    const BenchReport back =
        benchReportFromJson(json::parse(writeBenchReportJson(r)));
    EXPECT_EQ(back.bench, "unit");
    EXPECT_EQ(back.commit, "abc123");
    ASSERT_EQ(back.metrics.size(), 3u);
    EXPECT_DOUBLE_EQ(back.metrics.at("traffic_ratio").value, 0.30);
    EXPECT_EQ(back.metrics.at("traffic_ratio").direction, "lower");
    EXPECT_EQ(back.metrics.at("traffic_ratio").kind, "model");
    EXPECT_EQ(back.metrics.at("throughput").unit, "MB/s");
}

TEST(BenchReport, FileRoundTripViaReportPath)
{
    const std::string dir = testing::TempDir() + "bench_report_test_dir";
    const std::string path = benchReportPath(dir, "unit");
    EXPECT_NE(path.find("BENCH_unit.json"), std::string::npos);
    writeBenchReportFile(makeBaseline(), path);
    const BenchReport back = readBenchReportFile(path);
    EXPECT_EQ(back.bench, "unit");
    EXPECT_DOUBLE_EQ(back.metrics.at("psnr_db").value, 40.0);
    std::remove(path.c_str());
}

TEST(BenchReport, MalformedReportThrows)
{
    EXPECT_THROW(benchReportFromJson(json::parse("{\"schema\":\"nope\"}")),
                 std::runtime_error);
    EXPECT_THROW(
        benchReportFromJson(json::parse(
            R"({"schema":"rpx-bench-report-v1","bench":"b","metrics":
                {"m":{"value":1,"unit":"x","direction":"sideways",
                      "kind":"model"}}})")),
        std::runtime_error);
}

TEST(BenchReport, SoakSchemaUnwrapsEmbeddedBenchReport)
{
    // Soak reports wrap a complete bench report under "bench" so the
    // trend store ingests soak metrics through the same reader.
    const std::string soak =
        std::string("{\"schema\":\"rpx-soak-report-v1\",\"seed\":7,"
                    "\"bench\":") +
        writeBenchReportJson(makeBaseline()) + "}";
    const BenchReport back = benchReportFromJson(json::parse(soak));
    EXPECT_EQ(back.bench, "unit");
    EXPECT_DOUBLE_EQ(back.metrics.at("psnr_db").value, 40.0);

    // A soak report without the embedded object is malformed.
    EXPECT_THROW(benchReportFromJson(json::parse(
                     "{\"schema\":\"rpx-soak-report-v1\",\"seed\":7}")),
                 std::runtime_error);
    EXPECT_THROW(
        benchReportFromJson(json::parse(
            "{\"schema\":\"rpx-soak-report-v1\",\"bench\":\"str\"}")),
        std::runtime_error);
}

TEST(TrendCompare, ModelRegressionGates)
{
    const BenchReport base = makeBaseline();
    BenchReport cand = base;
    // "lower is better" worsening by +10% on a model metric: must gate.
    cand.metrics["traffic_ratio"].value = 0.33;
    const TrendResult res = compareReports(base, cand, TrendThresholds{});
    ASSERT_EQ(res.regressions.size(), 1u);
    EXPECT_FALSE(res.ok());
    EXPECT_EQ(res.regressions[0].metric, "traffic_ratio");
    EXPECT_NEAR(res.regressions[0].delta_pct, 10.0, 1e-9);
}

TEST(TrendCompare, HigherIsBetterDirectionRespected)
{
    const BenchReport base = makeBaseline();
    BenchReport cand = base;
    cand.metrics["psnr_db"].value = 36.0; // -10% on higher-is-better
    EXPECT_EQ(compareReports(base, cand, TrendThresholds{})
                  .regressions.size(),
              1u);
    cand = base;
    cand.metrics["psnr_db"].value = 44.0; // +10%: an improvement
    const TrendResult res = compareReports(base, cand, TrendThresholds{});
    EXPECT_TRUE(res.ok());
    ASSERT_EQ(res.improvements.size(), 1u);
    EXPECT_EQ(res.improvements[0].metric, "psnr_db");
}

TEST(TrendCompare, WithinThresholdIsQuiet)
{
    const BenchReport base = makeBaseline();
    BenchReport cand = base;
    cand.metrics["traffic_ratio"].value = 0.305; // +1.7% < 5%
    const TrendResult res = compareReports(base, cand, TrendThresholds{});
    EXPECT_TRUE(res.ok());
    EXPECT_TRUE(res.regressions.empty());
    EXPECT_TRUE(res.improvements.empty());
}

TEST(TrendCompare, WallMetricsWarnUnlessGated)
{
    const BenchReport base = makeBaseline();
    BenchReport cand = base;
    cand.metrics["throughput"].value = 50.0; // -50%, way past 25%
    TrendThresholds th;
    const TrendResult soft = compareReports(base, cand, th);
    EXPECT_TRUE(soft.ok());
    EXPECT_EQ(soft.warnings.size(), 1u);
    th.gate_wall = true;
    const TrendResult hard = compareReports(base, cand, th);
    EXPECT_FALSE(hard.ok());
    EXPECT_EQ(hard.regressions.size(), 1u);
}

TEST(TrendCompare, MissingMetricsWarnBothWays)
{
    BenchReport base = makeBaseline();
    BenchReport cand = makeBaseline();
    base.setMetric("gone", 1.0, "x", "higher", "model");
    cand.setMetric("brand_new", 2.0, "x", "higher", "model");
    const TrendResult res = compareReports(base, cand, TrendThresholds{});
    EXPECT_TRUE(res.ok());
    // One warning for the metric that vanished, one for the new arrival —
    // a rename must not hard-fail CI before the baseline refresh lands.
    EXPECT_EQ(res.warnings.size(), 2u);
}

TEST(TrendCompare, ZeroBaselineWarnsInsteadOfDividing)
{
    BenchReport base = makeBaseline();
    base.setMetric("zero", 0.0, "x", "lower", "model");
    BenchReport cand = base;
    cand.metrics["zero"].value = 5.0;
    const TrendResult res = compareReports(base, cand, TrendThresholds{});
    EXPECT_TRUE(res.ok());
    EXPECT_EQ(res.warnings.size(), 1u);
}

} // namespace
} // namespace rpx::obs
