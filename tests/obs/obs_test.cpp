/**
 * @file
 * Tests for the rpx::obs subsystem: counter registration and dump
 * determinism, histogram bucket boundaries, scoped stage timers, the
 * Chrome-trace span exporter (parsed back with a minimal JSON reader to
 * prove validity), the JSON/CSV metric snapshots, and end-to-end pipeline
 * instrumentation (one span per stage per frame).
 */

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/frame_store.hpp"
#include "frame/draw.hpp"
#include "memory/dram.hpp"
#include "obs/metrics_export.hpp"
#include "obs/obs.hpp"
#include "sim/pipeline.hpp"

namespace rpx {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader — just enough to prove the
// exporters emit valid JSON and to navigate the parsed structure.

struct Json {
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    const Json *find(const std::string &key) const
    {
        const auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    /** Parse the whole input; returns false on any syntax error. */
    bool parse(Json &out)
    {
        pos_ = 0;
        if (!value(out))
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *word)
    {
        const size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    bool value(Json &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        const char c = text_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.type = Json::Type::String;
            return string(out.str);
        }
        if (c == 't') {
            out.type = Json::Type::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.type = Json::Type::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.type = Json::Type::Null;
            return literal("null");
        }
        return number(out);
    }

    bool string(std::string &out)
    {
        if (text_[pos_] != '"')
            return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                if (pos_ + 1 >= text_.size())
                    return false;
                const char esc = text_[pos_ + 1];
                switch (esc) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'u':
                    if (pos_ + 5 >= text_.size())
                        return false;
                    out += '?'; // codepoint value irrelevant to the tests
                    pos_ += 4;
                    break;
                  default:
                    return false;
                }
                pos_ += 2;
            } else {
                out += text_[pos_++];
            }
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number(Json &out)
    {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return false;
        try {
            out.number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return false;
        }
        out.type = Json::Type::Number;
        return true;
    }

    bool array(Json &out)
    {
        out.type = Json::Type::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Json element;
            if (!value(element))
                return false;
            out.array.push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool object(Json &out)
    {
        out.type = Json::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (pos_ >= text_.size() || !string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            ++pos_;
            Json element;
            if (!value(element))
                return false;
            out.object.emplace(std::move(key), std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &text_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// PerfRegistry

TEST(PerfRegistry, CounterRegistrationAndIncrement)
{
    obs::PerfRegistry r;
    obs::Counter &c = r.counter("pipeline.encoder.pixels_kept");
    c.add(40);
    c.inc();
    EXPECT_EQ(c.value(), 41u);
    // Get-or-create returns the same instance.
    EXPECT_EQ(&r.counter("pipeline.encoder.pixels_kept"), &c);
    EXPECT_EQ(r.size(), 1u);
}

TEST(PerfRegistry, KindMismatchThrows)
{
    obs::PerfRegistry r;
    r.counter("dram.write_bytes");
    EXPECT_THROW(r.gauge("dram.write_bytes"), std::invalid_argument);
    EXPECT_THROW(r.histogram("dram.write_bytes"), std::invalid_argument);
    r.gauge("pipeline.kept_fraction");
    EXPECT_THROW(r.counter("pipeline.kept_fraction"),
                 std::invalid_argument);
}

TEST(PerfRegistry, DumpIsDeterministicAndNameSorted)
{
    // Register in shuffled order; dumps must come out identical and
    // sorted because snapshots are keyed by name.
    const auto build = [](obs::PerfRegistry &r,
                          const std::vector<std::string> &order) {
        for (const std::string &name : order)
            r.counter(name).add(7);
        r.gauge("zz.gauge").set(1.5);
    };
    obs::PerfRegistry a, b;
    build(a, {"dram.write_bytes", "encoder.frames", "decoder.txns"});
    build(b, {"decoder.txns", "dram.write_bytes", "encoder.frames"});

    std::ostringstream dump_a, dump_b;
    a.dump(dump_a);
    b.dump(dump_b);
    EXPECT_EQ(dump_a.str(), dump_b.str());
    EXPECT_EQ(dump_a.str(),
              "decoder.txns = 7\n"
              "dram.write_bytes = 7\n"
              "encoder.frames = 7\n"
              "zz.gauge = 1.5\n");
}

TEST(PerfRegistry, ConcurrentIncrementsAreLossless)
{
    obs::PerfRegistry r;
    obs::Counter &c = r.counter("contended");
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&c] {
            for (int k = 0; k < kPerThread; ++k)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), static_cast<u64>(kThreads) * kPerThread);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds)
{
    obs::Histogram h({10.0, 100.0, 1000.0});
    h.record(0.0);    // <= 10 -> bucket 0
    h.record(10.0);   // == bound -> bucket 0 (inclusive)
    h.record(10.5);   // bucket 1
    h.record(100.0);  // bucket 1
    h.record(100.01); // bucket 2
    h.record(1000.0); // bucket 2
    h.record(5000.0); // overflow bucket
    const std::vector<u64> counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u); // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 2u);
    EXPECT_EQ(counts[2], 2u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 5000.0);
}

TEST(Histogram, EmptyHistogramReportsZeros)
{
    obs::Histogram h({1.0});
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, MeanTracksSum)
{
    obs::PerfRegistry r;
    obs::Histogram &h = r.histogram("lat", {100.0});
    h.record(10.0);
    h.record(30.0);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_DOUBLE_EQ(h.sum(), 40.0);
}

// ---------------------------------------------------------------------------
// Scoped timers and trace exporter

TEST(ScopedStageTimer, NullContextIsNoop)
{
    // Must not crash or allocate observable state.
    for (int i = 0; i < 3; ++i) {
        obs::ScopedStageTimer t(nullptr, nullptr, "stage", "cat",
                                obs::TraceLane::Pipeline, i);
    }
}

TEST(ScopedStageTimer, FeedsHistogramAndTrace)
{
    obs::ObsContext ctx;
    ctx.enableTrace();
    obs::Histogram &h = ctx.registry().histogram("stage.latency_us");
    {
        obs::ScopedStageTimer t(&ctx, &h, "encode", "pipeline",
                                obs::TraceLane::Encoder, 3);
    }
    EXPECT_EQ(h.count(), 1u);
    ASSERT_EQ(ctx.trace()->size(), 1u);
    const obs::TraceSpan span = ctx.trace()->spans()[0];
    EXPECT_EQ(span.name, "encode");
    EXPECT_EQ(span.cat, "pipeline");
    EXPECT_EQ(span.frame, 3);
    EXPECT_GE(span.dur_us, 0.0);
}

TEST(TraceRecorder, EmitsValidChromeTraceJson)
{
    obs::TraceRecorder tr;
    tr.record({"encode", "pipeline", 1.0, 2.5,
               static_cast<u32>(obs::TraceLane::Encoder), 0});
    tr.record({"decode \"quoted\"\n", "pipeline", 4.0, 1.0,
               static_cast<u32>(obs::TraceLane::Decoder), 1});
    tr.record({"evaluate", "throughput_sim", 6.0, 3.0,
               static_cast<u32>(obs::TraceLane::Sim), -1});

    std::ostringstream os;
    tr.writeJson(os);

    Json root;
    ASSERT_TRUE(JsonParser(os.str()).parse(root)) << os.str();
    ASSERT_EQ(root.type, Json::Type::Object);
    const Json *events = root.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->type, Json::Type::Array);
    ASSERT_EQ(events->array.size(), 3u);

    const Json &first = events->array[0];
    EXPECT_EQ(first.find("name")->str, "encode");
    EXPECT_EQ(first.find("ph")->str, "X");
    EXPECT_DOUBLE_EQ(first.find("ts")->number, 1.0);
    EXPECT_DOUBLE_EQ(first.find("dur")->number, 2.5);
    EXPECT_DOUBLE_EQ(first.find("args")->find("frame")->number, 0.0);

    // The escaped name must round-trip through the parser.
    EXPECT_EQ(events->array[1].find("name")->str, "decode \"quoted\"\n");
    // Non-frame-scoped spans omit args.
    EXPECT_EQ(events->array[2].find("args"), nullptr);
}

// ---------------------------------------------------------------------------
// Metric snapshot exporters

TEST(MetricsExport, JsonSnapshotParsesBack)
{
    obs::PerfRegistry r;
    r.counter("dram.write_bytes").add(4096);
    r.gauge("pipeline.kept_fraction").set(0.25);
    obs::Histogram &h = r.histogram("stage.latency_us", {10.0, 100.0});
    h.record(5.0);
    h.record(50.0);

    std::ostringstream os;
    obs::writeMetricsJson(r.snapshot(), os);

    Json root;
    ASSERT_TRUE(JsonParser(os.str()).parse(root)) << os.str();
    const Json *metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->object.size(), 3u);

    const Json *counter = metrics->find("dram.write_bytes");
    ASSERT_NE(counter, nullptr);
    EXPECT_EQ(counter->find("kind")->str, "counter");
    EXPECT_DOUBLE_EQ(counter->find("value")->number, 4096.0);

    const Json *gauge = metrics->find("pipeline.kept_fraction");
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->find("kind")->str, "gauge");
    EXPECT_DOUBLE_EQ(gauge->find("value")->number, 0.25);

    const Json *hist = metrics->find("stage.latency_us");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->find("kind")->str, "histogram");
    EXPECT_DOUBLE_EQ(hist->find("count")->number, 2.0);
    EXPECT_DOUBLE_EQ(hist->find("sum")->number, 55.0);
    ASSERT_EQ(hist->find("bounds")->array.size(), 2u);
    ASSERT_EQ(hist->find("buckets")->array.size(), 3u);
    EXPECT_DOUBLE_EQ(hist->find("buckets")->array[0].number, 1.0);
    EXPECT_DOUBLE_EQ(hist->find("buckets")->array[1].number, 1.0);
}

// Regression: values past six significant digits used to export with the
// default ostream precision and round (1166874 -> 1.16687e+06 -> 1166870),
// silently breaking journal-vs-registry conservation checks.
TEST(MetricsExport, LargeAndFractionalValuesExportExactly)
{
    obs::PerfRegistry r;
    r.counter("pipeline.bytes_written").add(1166874);
    r.counter("big").add(9007199254740991ull); // 2^53 - 1
    r.gauge("pipeline.energy_total_nj").set(8003931.0);
    r.gauge("frac").set(0.1 + 0.2);

    std::ostringstream os;
    obs::writeMetricsJson(r.snapshot(), os);

    Json root;
    ASSERT_TRUE(JsonParser(os.str()).parse(root)) << os.str();
    const Json *metrics = root.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("pipeline.bytes_written")->find("value")->number,
              1166874.0);
    EXPECT_EQ(metrics->find("big")->find("value")->number,
              9007199254740991.0);
    EXPECT_EQ(
        metrics->find("pipeline.energy_total_nj")->find("value")->number,
        8003931.0);
    EXPECT_EQ(metrics->find("frac")->find("value")->number, 0.1 + 0.2);
}

TEST(MetricsExport, CsvSnapshotHasHeaderAndSortedRows)
{
    obs::PerfRegistry r;
    r.counter("b.counter").add(2);
    r.counter("a.counter").add(1);
    std::ostringstream os;
    obs::writeMetricsCsv(r.snapshot(), os);
    EXPECT_EQ(os.str(),
              "name,kind,value,sum,min,max,p50,p99,p999\n"
              "a.counter,counter,1,0,0,0,0,0,0\n"
              "b.counter,counter,2,0,0,0,0,0,0\n");
}

TEST(MetricsExport, CsvEscapesCommasAndQuotesInNames)
{
    obs::PerfRegistry r;
    r.counter("odd,name").add(1);
    r.counter("has\"quote").add(2);
    std::ostringstream os;
    obs::writeMetricsCsv(r.snapshot(), os);
    // RFC 4180: fields with commas/quotes are quoted, inner quotes doubled.
    EXPECT_NE(os.str().find("\"has\"\"quote\",counter,2"),
              std::string::npos);
    EXPECT_NE(os.str().find("\"odd,name\",counter,1"), std::string::npos);
}

TEST(MetricsExport, CsvHistogramRowCarriesQuantiles)
{
    obs::PerfRegistry r;
    obs::Histogram &h = r.histogram("lat", {1.0, 10.0, 100.0});
    h.record(5.0);
    std::ostringstream os;
    obs::writeMetricsCsv(r.snapshot(), os);
    // Single sample: every quantile is exactly that sample.
    EXPECT_NE(os.str().find("lat,histogram,1,5,5,5,5,5,5"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram quantiles (the edge cases consumers used to hand-roll wrong)

TEST(HistogramQuantile, EmptyHistogramIsZero)
{
    obs::Histogram h({1.0, 10.0});
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.999), 0.0);
}

TEST(HistogramQuantile, SingleSampleReturnsThatSample)
{
    obs::Histogram h(obs::Histogram::defaultLatencyBoundsUs());
    h.record(37.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 37.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 37.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 37.5);
    EXPECT_DOUBLE_EQ(h.quantile(0.999), 37.5);
}

TEST(HistogramQuantile, SmallNHighQuantileClampsToMax)
{
    obs::Histogram h({1.0, 10.0, 100.0, 1000.0});
    h.record(2.0);
    h.record(20.0);
    h.record(200.0);
    // p999 on 3 samples must not extrapolate past the recorded max.
    EXPECT_DOUBLE_EQ(h.quantile(0.999), 200.0);
    EXPECT_GE(h.quantile(0.5), 2.0);
    EXPECT_LE(h.quantile(0.5), 200.0);
    // Quantiles are monotone in q.
    EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
}

TEST(HistogramQuantile, OverflowBucketInterpolatesTowardMax)
{
    obs::Histogram h({1.0});
    h.record(50.0); // overflow bucket
    h.record(60.0);
    const double p99 = h.quantile(0.99);
    EXPECT_GE(p99, 50.0);
    EXPECT_LE(p99, 60.0);
}

TEST(HistogramQuantile, SampleQuantileMatchesHistogram)
{
    obs::PerfRegistry r;
    obs::Histogram &h = r.histogram("lat", {1.0, 10.0, 100.0});
    for (double v : {0.5, 3.0, 7.0, 42.0, 99.0, 250.0})
        h.record(v);
    for (const obs::MetricSample &s : r.snapshot()) {
        ASSERT_EQ(s.kind, obs::MetricSample::Kind::Histogram);
        for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0})
            EXPECT_DOUBLE_EQ(obs::sampleQuantile(s, q), h.quantile(q));
    }
}

// ---------------------------------------------------------------------------
// End-to-end pipeline instrumentation

TEST(PipelineObs, OneSpanPerStagePerFrameAndCountersPopulated)
{
    obs::ObsContext ctx;
    ctx.enableTrace();

    PipelineConfig pc;
    pc.width = 64;
    pc.height = 48;
    pc.obs = &ctx;
    VisionPipeline pipeline(pc);
    pipeline.runtime().setRegionLabels({{8, 8, 24, 24, 1, 1, 0}});

    Image scene(64, 48);
    Rng rng(1);
    fillValueNoise(scene, rng, 16.0, 20, 220);

    constexpr int kFrames = 3;
    for (int t = 0; t < kFrames; ++t)
        pipeline.processFrame(scene);

    // Every stage must emit exactly one span per frame.
    std::map<std::string, std::map<i64, int>> by_stage_frame;
    for (const obs::TraceSpan &s : ctx.trace()->spans())
        ++by_stage_frame[s.name][s.frame];
    for (const char *stage : {"sensor_readout", "isp", "encode",
                              "dram_write", "decode", "frame"}) {
        ASSERT_TRUE(by_stage_frame.count(stage)) << stage;
        EXPECT_EQ(by_stage_frame[stage].size(),
                  static_cast<size_t>(kFrames))
            << stage;
        for (const auto &[frame, count] : by_stage_frame[stage])
            EXPECT_EQ(count, 1) << stage << " frame " << frame;
    }

    // Counters from every wired component are present and consistent.
    obs::PerfRegistry &r = ctx.registry();
    EXPECT_EQ(r.counter("pipeline.frames").value(),
              static_cast<u64>(kFrames));
    EXPECT_EQ(r.counter("encoder.frames").value(),
              static_cast<u64>(kFrames));
    EXPECT_EQ(r.counter("encoder.pixels_in").value(),
              static_cast<u64>(64 * 48 * kFrames));
    EXPECT_GT(r.counter("encoder.pixels_kept").value(), 0u);
    EXPECT_GT(r.counter("dram.write_bytes").value(), 0u);
    EXPECT_EQ(r.counter("driver.ioctls").value(), 1u);
    EXPECT_GT(r.counter("driver.axi_writes").value(), 0u);

    // Stage latency histograms saw every frame.
    EXPECT_EQ(r.histogram("pipeline.stage.encode.latency_us").count(),
              static_cast<u64>(kFrames));
    EXPECT_EQ(r.histogram("pipeline.frame.latency_us").count(),
              static_cast<u64>(kFrames));

    // The pipeline traffic counters agree with the aggregate summary.
    EXPECT_EQ(r.counter("pipeline.bytes_written").value(),
              pipeline.traffic().bytes_written);
}

TEST(PipelineObs, DetachedPipelineRegistersNothing)
{
    PipelineConfig pc;
    pc.width = 32;
    pc.height = 32;
    VisionPipeline pipeline(pc);
    pipeline.runtime().setRegionLabels({{4, 4, 8, 8, 1, 1, 0}});
    Image scene(32, 32);
    pipeline.processFrame(scene);
    // Nothing to assert on a registry (there is none); the test is that
    // the uninstrumented path still works and stays silent.
    SUCCEED();
}

TEST(DecoderObs, TransactionCountersMirrorStats)
{
    obs::ObsContext ctx;
    DramModel dram;
    dram.attachObs(&ctx);
    RhythmicEncoder enc(32, 32);
    enc.attachObs(&ctx);
    FrameStore store(dram, 32, 32);
    RhythmicDecoder dec(store);
    dec.attachObs(&ctx);

    enc.setRegionLabels({{0, 0, 16, 16, 1, 1, 0}});
    Image frame(32, 32);
    for (i32 y = 0; y < 32; ++y)
        for (i32 x = 0; x < 32; ++x)
            frame.set(x, y, static_cast<u8>(x + y));
    store.store(enc.encodeFrame(frame, 0));

    dec.requestPixels(0, 0, 32);
    dec.requestPixels(0, 4, 64);

    obs::PerfRegistry &r = ctx.registry();
    EXPECT_EQ(r.counter("decoder.transactions").value(),
              dec.stats().transactions);
    EXPECT_EQ(r.counter("decoder.pixels_requested").value(),
              dec.stats().pixels_requested);
    EXPECT_EQ(r.counter("decoder.dram_reads").value(),
              dec.stats().dram_reads);
    EXPECT_EQ(r.counter("encoder.pixels_kept").value(), 16u * 16u);
}

} // namespace
} // namespace rpx
