/**
 * @file
 * obs v2 telemetry attribution: the conservation contracts.
 *
 * The attribution layer is only trustworthy if it never invents or loses
 * work, so these tests pin three layers of bookkeeping to each other:
 *  - encoder RegionAttribution sums exactly equal the encoder's own
 *    aggregate stats, serial and row-parallel alike;
 *  - pipeline FrameTelemetry region entries sum to the frame fields, and
 *    TelemetrySink totals reconcile with the PerfRegistry counters the
 *    pipeline maintains independently;
 *  - the JSONL journal round-trips losslessly (write -> parse -> equal),
 *    including under fault injection where quarantined frames must still
 *    be attributed rather than dropped.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/encoder.hpp"
#include "core/parallel_encoder.hpp"
#include "frame/draw.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "sim/pipeline.hpp"

namespace rpx {
namespace {

Image
noisyFrame(i32 w, i32 h, u64 seed)
{
    Image img(w, h);
    Rng rng(seed);
    fillValueNoise(img, rng, 20.0, 15, 235);
    return img;
}

/** Overlapping mixed-rhythm labels exercising every encoder mode. */
std::vector<RegionLabel>
mixedLabels(i32 w, i32 h)
{
    std::vector<RegionLabel> labels = {
        {4, 4, 40, 30, 1, 1, 0},       // dense foreground
        {20, 10, 48, 40, 2, 2, 1},     // overlaps the foreground
        {0, 0, w, h, 4, 3, 0},         // coarse full-frame periphery
        {w - 30, h - 24, 28, 20, 3, 1, 0},
    };
    sortRegionsByY(labels);
    return labels;
}

u64
sum(const std::vector<u64> &v)
{
    return std::accumulate(v.begin(), v.end(), u64{0});
}

// ---------------------------------------------------------------------------
// Encoder-level attribution conservation

TEST(RegionAttribution, SumsMatchEncoderStatsEveryFrame)
{
    const i32 w = 96, h = 72;
    RhythmicEncoder enc(w, h);
    enc.setRegionLabels(mixedLabels(w, h));
    enc.enableRegionAttribution(true);

    EncoderStats prev;
    for (FrameIndex t = 0; t < 8; ++t) {
        const EncodedFrame ef = enc.encodeFrame(noisyFrame(w, h, 7 + t), t);
        const RegionAttribution &attr = enc.lastFrameAttribution();
        ASSERT_EQ(attr.kept.size(), enc.regionLabels().size());

        const EncoderStats &now = enc.stats();
        // Every kept pixel and every comparison is attributed to exactly
        // one region: the per-region sums equal this frame's deltas.
        EXPECT_EQ(sum(attr.kept), now.pixels_encoded - prev.pixels_encoded)
            << "frame " << t;
        EXPECT_EQ(sum(attr.comparisons),
                  now.region_comparisons - prev.region_comparisons)
            << "frame " << t;
        EXPECT_EQ(sum(attr.kept), ef.pixels.size()) << "frame " << t;
        prev = now;
    }
}

TEST(RegionAttribution, DisabledLeavesNoTrace)
{
    const i32 w = 64, h = 48;
    RhythmicEncoder enc(w, h);
    enc.setRegionLabels(mixedLabels(w, h));
    enc.encodeFrame(noisyFrame(w, h, 3), 0);
    EXPECT_TRUE(enc.lastFrameAttribution().empty());
}

TEST(RegionAttribution, ParallelEncoderMatchesSerial)
{
    const i32 w = 128, h = 96;
    const std::vector<RegionLabel> labels = mixedLabels(w, h);

    RhythmicEncoder serial(w, h);
    serial.setRegionLabels(labels);
    serial.enableRegionAttribution(true);

    ParallelEncoder::Config cfg;
    cfg.threads = 4;
    ParallelEncoder parallel(w, h, cfg);
    parallel.setRegionLabels(labels);
    parallel.enableRegionAttribution(true);

    for (FrameIndex t = 0; t < 6; ++t) {
        const Image frame = noisyFrame(w, h, 100 + t);
        serial.encodeFrame(frame, t);
        parallel.encodeFrame(frame, t);
        // Band-sharded attribution must stitch back to the serial answer
        // exactly — same invariant as the bit-identical output contract.
        EXPECT_EQ(parallel.lastFrameAttribution().kept,
                  serial.lastFrameAttribution().kept)
            << "frame " << t;
        EXPECT_EQ(parallel.lastFrameAttribution().comparisons,
                  serial.lastFrameAttribution().comparisons)
            << "frame " << t;
    }
}

// ---------------------------------------------------------------------------
// Pipeline-level telemetry conservation

TEST(PipelineTelemetry, RegionSumsAndRegistryReconcile)
{
    const i32 w = 96, h = 64;
    constexpr int kFrames = 10;

    obs::ObsContext ctx;
    obs::TelemetrySink sink;
    PipelineConfig pc;
    pc.width = w;
    pc.height = h;
    pc.obs = &ctx;
    pc.telemetry = &sink;
    VisionPipeline pipeline(pc);
    pipeline.runtime().setRegionLabels(mixedLabels(w, h));

    for (int t = 0; t < kFrames; ++t)
        pipeline.processFrame(noisyFrame(w, h, 40 + t));

    const std::vector<obs::FrameTelemetry> frames = sink.frames();
    ASSERT_EQ(frames.size(), static_cast<size_t>(kFrames));

    for (const obs::FrameTelemetry &ft : frames) {
        u64 kept = 0, comparisons = 0;
        double region_energy_nj = 0.0;
        Bytes payload = 0;
        for (const obs::RegionTelemetry &rt : ft.regions) {
            kept += rt.pixels_kept;
            comparisons += rt.comparisons;
            region_energy_nj += rt.energy_nj;
            payload += rt.payload_bytes;
        }
        EXPECT_EQ(kept, ft.pixels_kept) << "frame " << ft.index;
        EXPECT_EQ(comparisons, ft.region_comparisons)
            << "frame " << ft.index;
        EXPECT_EQ(payload, ft.bytes_written) << "frame " << ft.index;
        EXPECT_NEAR(region_energy_nj, ft.energy_dram_nj,
                    1e-6 * (1.0 + ft.energy_dram_nj))
            << "frame " << ft.index;
        EXPECT_NEAR(ft.energy_total_nj,
                    ft.energy_sense_nj + ft.energy_csi_nj +
                        ft.energy_dram_nj,
                    1e-9);
    }

    // Sink totals reconcile with the PerfRegistry counters the pipeline
    // maintains independently of the telemetry path.
    const obs::TelemetryTotals totals = sink.totals();
    const auto counter = [&](const char *name) {
        return static_cast<u64>(ctx.registry().counter(name).value());
    };
    EXPECT_EQ(totals.frames, counter("pipeline.frames"));
    EXPECT_EQ(totals.bytes_written, counter("pipeline.bytes_written"));
    EXPECT_EQ(totals.bytes_read, counter("pipeline.bytes_read"));
    EXPECT_EQ(totals.metadata_bytes, counter("pipeline.metadata_bytes"));
    EXPECT_EQ(totals.quarantined_frames,
              counter("pipeline.quarantined_frames"));
    EXPECT_EQ(totals.deadline_misses, counter("pipeline.deadline_misses"));
    EXPECT_EQ(totals.transient_faults,
              counter("pipeline.transient_faults"));
    EXPECT_NEAR(totals.energy_total_nj,
                ctx.registry().gauge("pipeline.energy_total_nj").value(),
                1e-6 * (1.0 + totals.energy_total_nj));
}

TEST(PipelineTelemetry, JournalRoundTripsThroughJsonl)
{
    const i32 w = 80, h = 60;
    obs::TelemetrySink sink;
    PipelineConfig pc;
    pc.width = w;
    pc.height = h;
    pc.telemetry = &sink;
    VisionPipeline pipeline(pc);
    pipeline.runtime().setRegionLabels(mixedLabels(w, h));
    for (int t = 0; t < 4; ++t)
        pipeline.processFrame(noisyFrame(w, h, 90 + t));

    for (const obs::FrameTelemetry &ft : sink.frames()) {
        const std::string line = obs::writeFrameJson(ft);
        const obs::FrameTelemetry back =
            obs::frameFromJson(json::parse(line));
        EXPECT_EQ(back.index, ft.index);
        EXPECT_EQ(back.pixels_in, ft.pixels_in);
        EXPECT_EQ(back.pixels_kept, ft.pixels_kept);
        EXPECT_EQ(back.bytes_written, ft.bytes_written);
        EXPECT_EQ(back.bytes_read, ft.bytes_read);
        EXPECT_EQ(back.metadata_bytes, ft.metadata_bytes);
        EXPECT_EQ(back.dram_write_transactions,
                  ft.dram_write_transactions);
        EXPECT_EQ(back.dram_read_transactions, ft.dram_read_transactions);
        EXPECT_EQ(back.compare_cycles, ft.compare_cycles);
        EXPECT_EQ(back.stream_cycles, ft.stream_cycles);
        EXPECT_EQ(back.region_comparisons, ft.region_comparisons);
        EXPECT_EQ(back.quarantined, ft.quarantined);
        EXPECT_EQ(back.degradation_level, ft.degradation_level);
        EXPECT_DOUBLE_EQ(back.total_us, ft.total_us);
        EXPECT_DOUBLE_EQ(back.energy_total_nj, ft.energy_total_nj);
        ASSERT_EQ(back.regions.size(), ft.regions.size());
        for (size_t i = 0; i < ft.regions.size(); ++i) {
            EXPECT_EQ(back.regions[i].x, ft.regions[i].x);
            EXPECT_EQ(back.regions[i].w, ft.regions[i].w);
            EXPECT_EQ(back.regions[i].stride, ft.regions[i].stride);
            EXPECT_EQ(back.regions[i].active, ft.regions[i].active);
            EXPECT_EQ(back.regions[i].pixels_kept,
                      ft.regions[i].pixels_kept);
            EXPECT_EQ(back.regions[i].comparisons,
                      ft.regions[i].comparisons);
            EXPECT_DOUBLE_EQ(back.regions[i].energy_nj,
                             ft.regions[i].energy_nj);
        }
    }
}

TEST(PipelineTelemetry, JournalFileHoldsOneLinePerFrame)
{
    const i32 w = 64, h = 48;
    const std::string path =
        testing::TempDir() + "telemetry_journal_test.jsonl";
    std::remove(path.c_str());
    constexpr int kFrames = 5;
    {
        obs::TelemetrySink::Config tc;
        tc.journal_path = path;
        tc.keep_frames = 0; // journal-only: the ring retains nothing
        obs::TelemetrySink sink(tc);
        PipelineConfig pc;
        pc.width = w;
        pc.height = h;
        pc.telemetry = &sink;
        VisionPipeline pipeline(pc);
        pipeline.runtime().setRegionLabels(mixedLabels(w, h));
        for (int t = 0; t < kFrames; ++t)
            pipeline.processFrame(noisyFrame(w, h, 200 + t));
        EXPECT_TRUE(sink.frames().empty());
        EXPECT_EQ(sink.totals().frames, static_cast<u64>(kFrames));
        sink.flush();
    }
    const std::vector<obs::FrameTelemetry> journal =
        obs::readJournalFile(path);
    ASSERT_EQ(journal.size(), static_cast<size_t>(kFrames));
    for (int t = 0; t < kFrames; ++t)
        EXPECT_EQ(journal[static_cast<size_t>(t)].index,
                  static_cast<u64>(t));
    std::remove(path.c_str());
}

TEST(PipelineTelemetry, RingEvictsOldestButTotalsKeepEverything)
{
    const i32 w = 64, h = 48;
    obs::TelemetrySink::Config tc;
    tc.keep_frames = 3;
    obs::TelemetrySink sink(tc);
    PipelineConfig pc;
    pc.width = w;
    pc.height = h;
    pc.telemetry = &sink;
    VisionPipeline pipeline(pc);
    pipeline.runtime().setRegionLabels(mixedLabels(w, h));
    for (int t = 0; t < 7; ++t)
        pipeline.processFrame(noisyFrame(w, h, 300 + t));

    const auto frames = sink.frames();
    ASSERT_EQ(frames.size(), 3u);
    EXPECT_EQ(frames.front().index, 4u);
    EXPECT_EQ(frames.back().index, 6u);
    EXPECT_EQ(sink.totals().frames, 7u);
}

TEST(PipelineTelemetry, FaultInjectionFramesStayAttributed)
{
    const i32 w = 64, h = 48;
    constexpr int kFrames = 30;

    fault::FaultPlan plan = fault::FaultPlan::uniform(5e-3, 0xBEEF);
    obs::ObsContext ctx;
    obs::TelemetrySink sink;
    PipelineConfig pc;
    pc.width = w;
    pc.height = h;
    pc.obs = &ctx;
    pc.telemetry = &sink;
    pc.fault.crc_metadata = true;
    pc.fault.graceful = true;
    pc.fault.plan = &plan;
    VisionPipeline pipeline(pc);
    pipeline.runtime().setRegionLabels(mixedLabels(w, h));

    u64 quarantined = 0;
    for (int t = 0; t < kFrames; ++t)
        quarantined += pipeline.processFrame(noisyFrame(w, h, 500 + t))
                           .quarantined;

    // A quarantined frame is an outcome, not a gap: every processed frame
    // has a record, and the fault tallies reconcile with the registry.
    const obs::TelemetryTotals totals = sink.totals();
    EXPECT_EQ(totals.frames, static_cast<u64>(kFrames));
    EXPECT_EQ(totals.quarantined_frames, quarantined);
    EXPECT_EQ(totals.quarantined_frames,
              static_cast<u64>(ctx.registry()
                                   .counter("pipeline.quarantined_frames")
                                   .value()));
    u64 recorded_quarantined = 0;
    for (const obs::FrameTelemetry &ft : sink.frames()) {
        recorded_quarantined += ft.quarantined ? 1 : 0;
        u64 kept = 0;
        for (const obs::RegionTelemetry &rt : ft.regions)
            kept += rt.pixels_kept;
        EXPECT_EQ(kept, ft.pixels_kept) << "frame " << ft.index;
    }
    EXPECT_EQ(recorded_quarantined, quarantined);
}

} // namespace
} // namespace rpx
