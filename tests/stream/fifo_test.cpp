/** @file Unit tests for the bounded FIFO with stall accounting. */

#include <gtest/gtest.h>

#include "stream/fifo.hpp"

namespace rpx {
namespace {

TEST(Fifo, FifoOrder)
{
    Fifo<int> f(4);
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
}

TEST(Fifo, FullRejectsAndCountsStall)
{
    Fifo<int> f(2);
    EXPECT_TRUE(f.tryPush(1));
    EXPECT_TRUE(f.tryPush(2));
    EXPECT_FALSE(f.tryPush(3));
    EXPECT_EQ(f.pushStalls(), 1u);
    EXPECT_EQ(f.size(), 2u);
}

TEST(Fifo, EmptyPopStalls)
{
    Fifo<int> f(2);
    EXPECT_FALSE(f.tryPop().has_value());
    EXPECT_EQ(f.popStalls(), 1u);
}

TEST(Fifo, PopFromEmptyThrows)
{
    Fifo<int> f(2);
    EXPECT_THROW(f.pop(), std::runtime_error);
}

TEST(Fifo, HighWaterMark)
{
    Fifo<int> f(8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    f.pop();
    f.pop();
    EXPECT_EQ(f.highWaterMark(), 5u);
}

TEST(Fifo, DefaultDepthIsSixteen)
{
    // §5.1: "input/output buffers are FIFO structures with a depth of 16".
    Fifo<int> f;
    EXPECT_EQ(f.depth(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(f.tryPush(i));
    EXPECT_FALSE(f.tryPush(16));
}

TEST(Fifo, ZeroDepthRejected)
{
    EXPECT_THROW(Fifo<int>(0), std::runtime_error);
}

TEST(Fifo, ResetStatsKeepsContents)
{
    Fifo<int> f(2);
    f.push(1);
    f.push(2);
    (void)f.tryPush(3);
    f.resetStats();
    EXPECT_EQ(f.pushStalls(), 0u);
    EXPECT_EQ(f.size(), 2u);
    EXPECT_EQ(f.front(), 1);
}

} // namespace
} // namespace rpx
