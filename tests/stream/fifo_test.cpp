/** @file Unit tests for the bounded FIFO with stall accounting. */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "stream/fifo.hpp"

namespace rpx {
namespace {

TEST(Fifo, FifoOrder)
{
    Fifo<int> f(4);
    f.push(1);
    f.push(2);
    f.push(3);
    EXPECT_EQ(f.pop(), 1);
    EXPECT_EQ(f.pop(), 2);
    EXPECT_EQ(f.pop(), 3);
}

TEST(Fifo, FullRejectsAndCountsStall)
{
    Fifo<int> f(2);
    EXPECT_TRUE(f.tryPush(1));
    EXPECT_TRUE(f.tryPush(2));
    EXPECT_FALSE(f.tryPush(3));
    EXPECT_EQ(f.pushStalls(), 1u);
    EXPECT_EQ(f.size(), 2u);
}

TEST(Fifo, EmptyPopStalls)
{
    Fifo<int> f(2);
    EXPECT_FALSE(f.tryPop().has_value());
    EXPECT_EQ(f.popStalls(), 1u);
}

TEST(Fifo, PopFromEmptyThrows)
{
    Fifo<int> f(2);
    EXPECT_THROW(f.pop(), std::runtime_error);
}

TEST(Fifo, HighWaterMark)
{
    Fifo<int> f(8);
    for (int i = 0; i < 5; ++i)
        f.push(i);
    f.pop();
    f.pop();
    EXPECT_EQ(f.highWaterMark(), 5u);
}

TEST(Fifo, DefaultDepthIsSixteen)
{
    // §5.1: "input/output buffers are FIFO structures with a depth of 16".
    Fifo<int> f;
    EXPECT_EQ(f.depth(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(f.tryPush(i));
    EXPECT_FALSE(f.tryPush(16));
}

TEST(Fifo, ZeroDepthRejected)
{
    EXPECT_THROW(Fifo<int>(0), std::runtime_error);
}

TEST(Fifo, ResetStatsKeepsContents)
{
    Fifo<int> f(2);
    f.push(1);
    f.push(2);
    (void)f.tryPush(3);
    f.resetStats();
    EXPECT_EQ(f.pushStalls(), 0u);
    EXPECT_EQ(f.size(), 2u);
    EXPECT_EQ(f.front(), 1);
}

TEST(MpmcQueue, SingleThreadOrderAndStats)
{
    MpmcQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.tryPush(3));
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_EQ(q.tryPop().value(), 3);
    EXPECT_FALSE(q.tryPop().has_value());
    const MpmcQueueStats s = q.stats();
    EXPECT_EQ(s.pushes, 3u);
    EXPECT_EQ(s.pops, 3u);
    EXPECT_EQ(s.high_water, 3u);
}

TEST(MpmcQueue, TryPushRespectsCapacity)
{
    MpmcQueue<int> q(2);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.size(), 2u);
}

TEST(MpmcQueue, ZeroCapacityRejected)
{
    EXPECT_THROW(MpmcQueue<int>(0), std::runtime_error);
}

TEST(MpmcQueue, CloseDrainsBufferedElements)
{
    MpmcQueue<int> q(4);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();
    EXPECT_TRUE(q.closed());
    // Closed: pushes refused, buffered elements still drain in order.
    EXPECT_FALSE(q.push(3));
    EXPECT_FALSE(q.tryPush(3));
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_EQ(q.stats().rejected, 2u);
}

TEST(MpmcQueue, CloseIsIdempotent)
{
    MpmcQueue<int> q(2);
    q.close();
    q.close();
    EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, CloseWakesBlockedConsumer)
{
    MpmcQueue<int> q(2);
    std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
    q.close();
    consumer.join();
}

TEST(MpmcQueue, CloseWakesBlockedProducer)
{
    MpmcQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
    q.close();
    producer.join();
    EXPECT_EQ(q.pop().value(), 1);
}

TEST(MpmcQueue, MoveOnlyElements)
{
    MpmcQueue<std::unique_ptr<int>> q(2);
    EXPECT_TRUE(q.push(std::make_unique<int>(7)));
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(**v, 7);
}

/**
 * Contention stress: several producers and consumers hammer a small queue
 * (so both full-side and empty-side blocking paths are exercised) and the
 * element multiset must survive intact. Run under TSan by the tsan CI job.
 */
TEST(MpmcQueue, ContentionStressConservesElements)
{
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 2000;
    MpmcQueue<int> q(8);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(p * kPerProducer + i));
        });
    }

    std::vector<std::vector<int>> seen(kConsumers);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&q, &seen, c] {
            while (auto v = q.pop())
                seen[static_cast<size_t>(c)].push_back(*v);
        });
    }

    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    std::vector<int> all;
    for (const auto &part : seen)
        all.insert(all.end(), part.begin(), part.end());
    ASSERT_EQ(all.size(),
              static_cast<size_t>(kProducers) * kPerProducer);
    std::sort(all.begin(), all.end());
    std::vector<int> expected(all.size());
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(all, expected);

    const MpmcQueueStats s = q.stats();
    EXPECT_EQ(s.pushes, all.size());
    EXPECT_EQ(s.pops, all.size());
    EXPECT_LE(s.high_water, q.capacity());
}

/** Per-producer FIFO order is preserved even under contention. */
TEST(MpmcQueue, ContentionPreservesPerProducerOrder)
{
    MpmcQueue<int> q(4);
    constexpr int kCount = 5000;
    std::thread producer([&q] {
        for (int i = 0; i < kCount; ++i)
            ASSERT_TRUE(q.push(i));
        q.close();
    });
    int prev = -1;
    size_t popped = 0;
    while (auto v = q.pop()) {
        EXPECT_GT(*v, prev);
        prev = *v;
        ++popped;
    }
    producer.join();
    EXPECT_EQ(popped, static_cast<size_t>(kCount));
}

TEST(MpmcQueue, PopForTimesOutOnEmptyQueue)
{
    MpmcQueue<int> q(2);
    EXPECT_FALSE(q.popFor(std::chrono::microseconds(1000)).has_value());
    EXPECT_FALSE(q.closed());
}

TEST(MpmcQueue, PopForReturnsBufferedElement)
{
    MpmcQueue<int> q(2);
    ASSERT_TRUE(q.push(9));
    const auto v = q.popFor(std::chrono::microseconds(1000));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
}

TEST(MpmcQueue, PopForDrainsAfterClose)
{
    MpmcQueue<int> q(2);
    ASSERT_TRUE(q.push(4));
    q.close();
    EXPECT_EQ(q.popFor(std::chrono::microseconds(1000)).value(), 4);
    EXPECT_FALSE(q.popFor(std::chrono::microseconds(1000)).has_value());
}

TEST(MpmcQueue, PushForTimesOutOnFullQueue)
{
    MpmcQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    EXPECT_FALSE(q.pushFor(2, std::chrono::microseconds(1000)));
    // A timeout is not a close reject: the element may be retried.
    EXPECT_EQ(q.stats().rejected, 0u);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_TRUE(q.pushFor(2, std::chrono::microseconds(1000)));
    EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, PushForRefusedAfterClose)
{
    MpmcQueue<int> q(2);
    q.close();
    EXPECT_FALSE(q.pushFor(5, std::chrono::microseconds(1000)));
    EXPECT_EQ(q.stats().rejected, 1u);
}

/**
 * Timed-op contention stress: consumers poll with short timeouts (the
 * watchdog heartbeat pattern) while producers block-push. Every element
 * must still arrive exactly once. Run under TSan by the tsan CI job.
 */
TEST(MpmcQueue, TimedOpsContentionConservesElements)
{
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    constexpr int kPerProducer = 1500;
    MpmcQueue<int> q(8);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(
                    q.pushFor(p * kPerProducer + i,
                              std::chrono::microseconds(100000)));
        });
    }

    std::vector<std::vector<int>> seen(kConsumers);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&q, &seen, c] {
            for (;;) {
                auto v = q.popFor(std::chrono::microseconds(200));
                if (v) {
                    seen[static_cast<size_t>(c)].push_back(*v);
                    continue;
                }
                // The watchdog-worker exit contract: a timed pop that
                // returns nothing only means "done" once the queue is
                // closed AND drained.
                if (q.closed() && q.size() == 0)
                    return;
            }
        });
    }

    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    std::vector<int> all;
    for (const auto &part : seen)
        all.insert(all.end(), part.begin(), part.end());
    std::sort(all.begin(), all.end());
    std::vector<int> want(kProducers * kPerProducer);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(all, want);
}

} // namespace
} // namespace rpx
