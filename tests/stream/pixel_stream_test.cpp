/** @file Unit tests for raster-scan pixel streaming. */

#include <vector>

#include <gtest/gtest.h>

#include "frame/image.hpp"
#include "stream/pixel_stream.hpp"

namespace rpx {
namespace {

TEST(PixelStream, RasterOrderAndSidebands)
{
    Image img(3, 2);
    for (i32 y = 0; y < 2; ++y)
        for (i32 x = 0; x < 3; ++x)
            img.set(x, y, static_cast<u8>(10 * y + x));

    std::vector<PixelBeat> beats;
    const u64 n = streamImage(img, [&](const PixelBeat &b) {
        beats.push_back(b);
        return true;
    });
    ASSERT_EQ(n, 6u);
    ASSERT_EQ(beats.size(), 6u);

    // Raster order.
    EXPECT_EQ(beats[0].x, 0);
    EXPECT_EQ(beats[0].y, 0);
    EXPECT_EQ(beats[4].x, 1);
    EXPECT_EQ(beats[4].y, 1);

    // Start-of-frame only on the first beat.
    EXPECT_TRUE(beats[0].sof);
    for (size_t i = 1; i < beats.size(); ++i)
        EXPECT_FALSE(beats[i].sof);

    // End-of-line on the last beat of each row.
    EXPECT_TRUE(beats[2].eol);
    EXPECT_TRUE(beats[5].eol);
    EXPECT_FALSE(beats[1].eol);

    // Values carried through.
    EXPECT_EQ(beats[4].value, 11);
}

TEST(PixelStream, CollectRoundTrip)
{
    Image img(5, 4);
    for (i32 y = 0; y < 4; ++y)
        for (i32 x = 0; x < 5; ++x)
            img.set(x, y, static_cast<u8>(x * y + 3));

    std::vector<PixelBeat> beats;
    streamImage(img, [&](const PixelBeat &b) {
        beats.push_back(b);
        return true;
    });
    EXPECT_EQ(collectImage(beats, 5, 4), img);
}

TEST(CycleBudget, TwoPixelsPerClock)
{
    CycleBudget budget(2.0);
    budget.addPixels(1000);
    budget.addCycles(500);
    EXPECT_TRUE(budget.withinBudget());
    budget.addCycles(1);
    EXPECT_FALSE(budget.withinBudget());
}

TEST(CycleBudget, Reset)
{
    CycleBudget budget(2.0);
    budget.addPixels(10);
    budget.addCycles(100);
    EXPECT_FALSE(budget.withinBudget());
    budget.reset();
    EXPECT_TRUE(budget.withinBudget());
    EXPECT_EQ(budget.pixels(), 0u);
}

} // namespace
} // namespace rpx
