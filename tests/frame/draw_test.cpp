/** @file Unit tests for the drawing helpers. */

#include <gtest/gtest.h>

#include "frame/draw.hpp"

namespace rpx {
namespace {

TEST(Draw, FillRectClips)
{
    Image img(10, 10);
    fillRect(img, Rect{8, 8, 10, 10}, 200);
    EXPECT_EQ(img.at(9, 9), 200);
    EXPECT_EQ(img.at(7, 7), 0);
}

TEST(Draw, FillRectRgb)
{
    Image img(4, 4, PixelFormat::Rgb8);
    fillRectRgb(img, Rect{0, 0, 2, 2}, 10, 20, 30);
    EXPECT_EQ(img.at(1, 1, 0), 10);
    EXPECT_EQ(img.at(1, 1, 1), 20);
    EXPECT_EQ(img.at(1, 1, 2), 30);
    EXPECT_EQ(img.at(3, 3, 0), 0);
}

TEST(Draw, DrawRectOutlineOnly)
{
    Image img(10, 10);
    drawRect(img, Rect{2, 2, 5, 5}, 99);
    EXPECT_EQ(img.at(2, 2), 99);
    EXPECT_EQ(img.at(6, 6), 99);
    EXPECT_EQ(img.at(4, 4), 0); // interior untouched
}

TEST(Draw, FillCircleRadius)
{
    Image img(21, 21);
    fillCircle(img, 10, 10, 5, 255);
    EXPECT_EQ(img.at(10, 10), 255);
    EXPECT_EQ(img.at(10, 15), 255); // on the radius
    EXPECT_EQ(img.at(10, 16), 0);
    EXPECT_EQ(img.at(14, 14), 0);   // corner outside circle
}

TEST(Draw, LineEndpoints)
{
    Image img(10, 10);
    drawLine(img, {1, 1}, {8, 8}, 50);
    EXPECT_EQ(img.at(1, 1), 50);
    EXPECT_EQ(img.at(8, 8), 50);
    EXPECT_EQ(img.at(4, 4), 50); // diagonal passes through
}

TEST(Draw, LineClipsOutOfBounds)
{
    Image img(5, 5);
    drawLine(img, {-3, 2}, {8, 2}, 70);
    for (i32 x = 0; x < 5; ++x)
        EXPECT_EQ(img.at(x, 2), 70);
}

TEST(Draw, CheckerboardAlternates)
{
    Image img(8, 8);
    fillCheckerboard(img, 2, 10, 200);
    EXPECT_EQ(img.at(0, 0), 10);
    EXPECT_EQ(img.at(2, 0), 200);
    EXPECT_EQ(img.at(0, 2), 200);
    EXPECT_EQ(img.at(2, 2), 10);
}

TEST(Draw, GradientMonotone)
{
    Image img(16, 2);
    fillGradient(img, 0, 255);
    EXPECT_EQ(img.at(0, 0), 0);
    EXPECT_EQ(img.at(15, 0), 255);
    for (i32 x = 1; x < 16; ++x)
        EXPECT_GE(img.at(x, 0), img.at(x - 1, 0));
}

TEST(Draw, ValueNoiseInRange)
{
    Image img(32, 32);
    Rng rng(5);
    fillValueNoise(img, rng, 8.0, 50, 180);
    for (const u8 v : img.data()) {
        EXPECT_GE(v, 50);
        EXPECT_LE(v, 180);
    }
}

TEST(Draw, BlitClips)
{
    Image dst(6, 6);
    Image src(4, 4, PixelFormat::Gray8, 99);
    blit(dst, src, 4, 4);
    EXPECT_EQ(dst.at(5, 5), 99);
    EXPECT_EQ(dst.at(3, 3), 0);
}

TEST(Draw, BlitNegativeOrigin)
{
    Image dst(6, 6);
    Image src(4, 4, PixelFormat::Gray8, 88);
    blit(dst, src, -2, -2);
    EXPECT_EQ(dst.at(0, 0), 88);
    EXPECT_EQ(dst.at(1, 1), 88);
    EXPECT_EQ(dst.at(2, 2), 0);
}

TEST(Draw, GaussianBlobPeakAtCenter)
{
    Image img(21, 21);
    addGaussianBlob(img, 10.0, 10.0, 2.0, 200.0);
    EXPECT_GT(img.at(10, 10), 190);
    EXPECT_GT(img.at(10, 10), img.at(13, 10));
    EXPECT_EQ(img.at(0, 0), 0);
}

TEST(Draw, GaussianBlobAdditiveClamped)
{
    Image img(9, 9, PixelFormat::Gray8, 200);
    addGaussianBlob(img, 4.0, 4.0, 1.5, 200.0);
    EXPECT_EQ(img.at(4, 4), 255); // clamped
}

} // namespace
} // namespace rpx
