/** @file Unit tests for image-quality metrics. */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "frame/metrics.hpp"

namespace rpx {
namespace {

TEST(Mse, IdenticalIsZero)
{
    Image a(4, 4, PixelFormat::Gray8, 100);
    EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Mse, KnownDifference)
{
    Image a(2, 1), b(2, 1);
    a.set(0, 0, 10);
    b.set(0, 0, 20); // diff 10 -> 100
    // second pixel both 0
    EXPECT_DOUBLE_EQ(mse(a, b), 50.0);
}

TEST(Mse, ShapeMismatchThrows)
{
    Image a(2, 2), b(3, 2);
    EXPECT_THROW(mse(a, b), std::invalid_argument);
}

TEST(Psnr, InfiniteForIdentical)
{
    Image a(3, 3, PixelFormat::Gray8, 42);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
}

TEST(Psnr, KnownValue)
{
    Image a(1, 1), b(1, 1);
    b.set(0, 0, 255);
    // mse = 255^2 -> psnr = 0 dB.
    EXPECT_NEAR(psnr(a, b), 0.0, 1e-9);
}

TEST(Sad, Symmetric)
{
    Image a(2, 2), b(2, 2);
    a.set(0, 0, 200);
    b.set(1, 1, 50);
    EXPECT_EQ(sad(a, b), 250u);
    EXPECT_EQ(sad(b, a), 250u);
}

TEST(MseInRect, OnlyCountsRect)
{
    Image a(10, 10), b(10, 10);
    b.set(0, 0, 100); // outside the rect below
    const Rect r{5, 5, 3, 3};
    EXPECT_DOUBLE_EQ(mseInRect(a, b, r), 0.0);
    b.set(5, 5, 30);
    EXPECT_NEAR(mseInRect(a, b, r), 900.0 / 9.0, 1e-9);
}

TEST(Ssim, IdenticalIsOne)
{
    Image a(8, 8);
    for (i32 y = 0; y < 8; ++y)
        for (i32 x = 0; x < 8; ++x)
            a.set(x, y, static_cast<u8>(x * 20 + y));
    EXPECT_NEAR(ssimGlobal(a, a), 1.0, 1e-12);
}

TEST(Ssim, DegradesWithNoise)
{
    Image a(16, 16), b(16, 16);
    for (i32 y = 0; y < 16; ++y) {
        for (i32 x = 0; x < 16; ++x) {
            const u8 v = static_cast<u8>(8 * x + y);
            a.set(x, y, v);
            b.set(x, y, static_cast<u8>(255 - v)); // inverted
        }
    }
    EXPECT_LT(ssimGlobal(a, b), 0.1);
}

TEST(Ssim, RejectsRgb)
{
    Image a(2, 2, PixelFormat::Rgb8);
    EXPECT_THROW(ssimGlobal(a, a), std::invalid_argument);
}

} // namespace
} // namespace rpx
