/** @file Unit tests for the Image container. */

#include <gtest/gtest.h>

#include "frame/image.hpp"

namespace rpx {
namespace {

TEST(Image, DefaultIsEmpty)
{
    Image img;
    EXPECT_TRUE(img.empty());
    EXPECT_EQ(img.pixelCount(), 0);
}

TEST(Image, AllocZeroFilled)
{
    Image img(4, 3);
    EXPECT_EQ(img.byteCount(), 12u);
    for (i32 y = 0; y < 3; ++y)
        for (i32 x = 0; x < 4; ++x)
            EXPECT_EQ(img.at(x, y), 0);
}

TEST(Image, RgbChannelLayout)
{
    Image img(2, 2, PixelFormat::Rgb8);
    EXPECT_EQ(img.channels(), 3);
    EXPECT_EQ(img.byteCount(), 12u);
    img.set(1, 0, 0, 10);
    img.set(1, 0, 1, 20);
    img.set(1, 0, 2, 30);
    EXPECT_EQ(img.at(1, 0, 0), 10);
    EXPECT_EQ(img.at(1, 0, 1), 20);
    EXPECT_EQ(img.at(1, 0, 2), 30);
    // Raw layout is interleaved.
    EXPECT_EQ(img.data()[3], 10);
    EXPECT_EQ(img.data()[4], 20);
    EXPECT_EQ(img.data()[5], 30);
}

TEST(Image, NegativeDimensionsThrow)
{
    EXPECT_THROW(Image(-1, 4), std::invalid_argument);
}

TEST(Image, AtClampedBorders)
{
    Image img(3, 3);
    img.set(0, 0, 7);
    img.set(2, 2, 9);
    EXPECT_EQ(img.atClamped(-5, -5), 7);
    EXPECT_EQ(img.atClamped(10, 10), 9);
}

TEST(Image, BilinearInterpolation)
{
    Image img(2, 1);
    img.set(0, 0, 0);
    img.set(1, 0, 100);
    EXPECT_NEAR(img.bilinear(0.5, 0.0), 50.0, 1e-9);
    EXPECT_NEAR(img.bilinear(0.25, 0.0), 25.0, 1e-9);
}

TEST(Image, CropClips)
{
    Image img(10, 10);
    img.set(9, 9, 42);
    const Image c = img.crop(Rect{8, 8, 10, 10});
    EXPECT_EQ(c.width(), 2);
    EXPECT_EQ(c.height(), 2);
    EXPECT_EQ(c.at(1, 1), 42);
}

TEST(Image, ResizeIdentity)
{
    Image img(5, 4);
    for (i32 y = 0; y < 4; ++y)
        for (i32 x = 0; x < 5; ++x)
            img.set(x, y, static_cast<u8>(10 * x + y));
    const Image same = img.resized(5, 4);
    EXPECT_EQ(same, img);
}

TEST(Image, ResizeDownUniform)
{
    Image img(8, 8, PixelFormat::Gray8, 77);
    const Image half = img.resized(4, 4);
    for (i32 y = 0; y < 4; ++y)
        for (i32 x = 0; x < 4; ++x)
            EXPECT_EQ(half.at(x, y), 77);
}

TEST(Image, ResizeRejectsNonPositive)
{
    Image img(4, 4);
    EXPECT_THROW(img.resized(0, 4), std::invalid_argument);
}

TEST(Image, ToGrayWeights)
{
    Image rgb(1, 1, PixelFormat::Rgb8);
    rgb.set(0, 0, 0, 255); // pure red
    const Image gray = rgb.toGray();
    EXPECT_NEAR(gray.at(0, 0), 76, 1); // 0.299 * 255
}

TEST(Image, ToGrayOnGrayIsCopy)
{
    Image g(3, 3, PixelFormat::Gray8, 9);
    EXPECT_EQ(g.toGray(), g);
}

TEST(ClampToU8, Bounds)
{
    EXPECT_EQ(clampToU8(-4.0), 0);
    EXPECT_EQ(clampToU8(300.0), 255);
    EXPECT_EQ(clampToU8(127.4), 127);
    EXPECT_EQ(clampToU8(127.6), 128);
}

} // namespace
} // namespace rpx
