/** @file Unit tests for the capture-scheme baselines. */

#include <gtest/gtest.h>

#include "baseline/frame_based.hpp"
#include "baseline/h264_model.hpp"
#include "baseline/multi_roi.hpp"

namespace rpx {
namespace {

TEST(FrameBased, TrafficIsFullFrameBothWays)
{
    FrameBasedCapture cap(1920, 1080);
    const FrameTraffic t = cap.frameTraffic();
    EXPECT_EQ(t.bytes_written, 1920u * 1080u);
    EXPECT_EQ(t.bytes_read, 1920u * 1080u);
    EXPECT_EQ(t.metadata_bytes, 0u);
    EXPECT_EQ(t.footprint, 1920u * 1080u);
}

TEST(FrameBased, BufferedFramesScaleFootprint)
{
    FrameBasedCapture cap(100, 100, 3);
    EXPECT_EQ(cap.frameTraffic().footprint, 30000u);
}

TEST(FrameBased, RejectsBadGeometry)
{
    EXPECT_THROW(FrameBasedCapture(0, 100), std::invalid_argument);
    EXPECT_THROW(FrameBasedCapture(10, 10, 0), std::invalid_argument);
}

TEST(TrafficSummary, AccumulatesAndAverages)
{
    TrafficSummary sum;
    FrameTraffic a;
    a.bytes_written = 100;
    a.bytes_read = 100;
    a.footprint = 1000;
    FrameTraffic b;
    b.bytes_written = 300;
    b.bytes_read = 300;
    b.footprint = 3000;
    sum.add(a);
    sum.add(b);
    EXPECT_EQ(sum.frames, 2u);
    EXPECT_EQ(sum.bytes_written, 400u);
    EXPECT_EQ(sum.footprint_peak, 3000u);
    EXPECT_DOUBLE_EQ(sum.footprint_mean, 2000.0);
    // (400+400)/2 bytes per frame * 30 fps = 12000 B/s.
    EXPECT_NEAR(sum.throughputMBps(30.0), 12000.0 / 1e6, 1e-12);
}

TEST(MultiRoi, PassThroughWhenFewRegions)
{
    MultiRoiCapture cap(640, 480, 16);
    std::vector<RegionLabel> labels = {
        {10, 10, 50, 50, 2, 3, 0},
        {200, 200, 40, 40, 1, 1, 0},
    };
    const auto windows = cap.reduceRegions(labels);
    ASSERT_EQ(windows.size(), 2u);
    // Stride/skip dropped: windows are the raw rects.
    EXPECT_EQ(windows[0], (Rect{10, 10, 50, 50}));
}

TEST(MultiRoi, MergesDownToSensorBudget)
{
    MultiRoiCapture cap(640, 480, 16);
    std::vector<RegionLabel> labels;
    for (int i = 0; i < 200; ++i)
        labels.push_back({(i * 37) % 600, (i * 53) % 440, 20, 20, 2, 2, 0});
    const auto windows = cap.reduceRegions(labels);
    EXPECT_LE(windows.size(), 16u);
    EXPECT_GE(windows.size(), 8u);
}

TEST(MultiRoi, OverlapStoredPerWindow)
{
    MultiRoiCapture cap(640, 480, 16);
    // Two fully overlapping windows pay twice (grouped storage, §3.2).
    const std::vector<Rect> windows{{0, 0, 100, 100}, {0, 0, 100, 100}};
    EXPECT_EQ(cap.frameTraffic(windows).bytes_written, 20000u);
}

TEST(MultiRoi, TrafficIncludesDescriptors)
{
    MultiRoiCapture cap(640, 480);
    const std::vector<Rect> windows{{0, 0, 10, 10}};
    const FrameTraffic t = cap.frameTraffic(windows);
    EXPECT_EQ(t.bytes_written, 100u);
    EXPECT_GT(t.metadata_bytes, 0u);
}

TEST(H264, MoreTrafficThanFrameBased)
{
    // Fig. 8's observation: compression needs multiple frames in memory,
    // so its pixel traffic and footprint exceed plain frame-based capture.
    FrameBasedCapture plain(1920, 1080);
    H264Capture codec(1920, 1080);
    const FrameTraffic p = plain.frameTraffic();
    const FrameTraffic c = codec.frameTraffic();
    EXPECT_GT(c.bytes_written, p.bytes_written);
    EXPECT_GT(c.bytes_read, p.bytes_read);
    EXPECT_GT(c.footprint, 2 * p.footprint);
}

TEST(H264, BitstreamIsSmall)
{
    H264Config cfg;
    H264Capture codec(100, 100, cfg);
    const FrameTraffic t = codec.frameTraffic();
    const double pixels = 100.0 * 100.0;
    // The bitstream adds only pixels/ratio on top of raw + recon writes.
    EXPECT_NEAR(static_cast<double>(t.bytes_written),
                pixels * (1.0 + cfg.recon_writes) +
                    pixels / cfg.compression_ratio,
                1.0);
}

TEST(H264, RejectsBadConfig)
{
    H264Config cfg;
    cfg.compression_ratio = 0.5;
    EXPECT_THROW(H264Capture(100, 100, cfg), std::invalid_argument);
}

} // namespace
} // namespace rpx
