/**
 * @file
 * rpx::fault unit tests: CRC-32 reference vectors, deterministic seeded
 * injection, rate calibration, and plan validation.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "common/crc32.hpp"
#include "fault/fault.hpp"

namespace rpx {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::Stage;

TEST(Crc32, KnownVector)
{
    // The classic CRC-32/IEEE check value.
    const char *msg = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const u8 *>(msg), 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(crc32(nullptr, 0), 0u);
    Crc32 crc;
    EXPECT_EQ(crc.value(), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::vector<u8> data(1024);
    std::iota(data.begin(), data.end(), 0);
    const u32 whole = crc32(data);

    Crc32 crc;
    crc.update(data.data(), 100);
    crc.update(data.data() + 100, 1);
    crc.update(data.data() + 101, 923);
    EXPECT_EQ(crc.value(), whole);

    crc.reset();
    crc.update(data);
    EXPECT_EQ(crc.value(), whole);
}

TEST(Crc32, DetectsSingleBitFlip)
{
    std::vector<u8> data(256, 0xA5);
    const u32 clean = crc32(data);
    data[97] ^= 0x10;
    EXPECT_NE(crc32(data), clean);
}

TEST(FaultPlanTest, DefaultInjectsNothing)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.enabled());

    FaultInjector inj(plan);
    std::vector<u8> buf(4096, 0x42);
    EXPECT_EQ(inj.corruptBuffer(Stage::Csi2, buf.data(), buf.size()), 0u);
    EXPECT_FALSE(inj.dropEvent(Stage::Dma));
    EXPECT_EQ(inj.stallEvent(Stage::DramWrite), 0u);
    EXPECT_TRUE(inj.sampleDroppedRows(Stage::Csi2, 480).empty());
    for (u8 b : buf)
        EXPECT_EQ(b, 0x42);
}

TEST(FaultPlanTest, UniformSetsDocumentedRates)
{
    const FaultPlan plan = FaultPlan::uniform(1e-3, 77);
    EXPECT_TRUE(plan.enabled());
    EXPECT_EQ(plan.seed, 77u);
    EXPECT_DOUBLE_EQ(plan.at(Stage::Csi2).byte_error_rate, 1e-3);
    EXPECT_DOUBLE_EQ(plan.at(Stage::DramRead).byte_error_rate, 1e-3);
    EXPECT_DOUBLE_EQ(plan.at(Stage::DramWrite).byte_error_rate, 1e-3);
    EXPECT_DOUBLE_EQ(plan.at(Stage::FrameMeta).byte_error_rate, 1e-3);
    EXPECT_DOUBLE_EQ(plan.at(Stage::Csi2).drop_rate, 1e-2);
    EXPECT_DOUBLE_EQ(plan.at(Stage::Dma).drop_rate, 1e-2);
}

TEST(FaultPlanTest, RatesOutsideUnitIntervalRejected)
{
    FaultPlan plan;
    plan.at(Stage::Csi2).byte_error_rate = 1.5;
    EXPECT_THROW(FaultInjector{plan}, std::invalid_argument);

    FaultPlan neg;
    neg.at(Stage::Dma).drop_rate = -0.1;
    EXPECT_THROW(FaultInjector{neg}, std::invalid_argument);
}

TEST(FaultInjectorTest, SameSeedSamePattern)
{
    const FaultPlan plan = FaultPlan::uniform(0.01, 1234);
    FaultInjector a(plan);
    FaultInjector b(plan);

    std::vector<u8> buf_a(8192, 0x5A);
    std::vector<u8> buf_b(8192, 0x5A);
    EXPECT_EQ(a.corruptBuffer(Stage::Csi2, buf_a.data(), buf_a.size()),
              b.corruptBuffer(Stage::Csi2, buf_b.data(), buf_b.size()));
    EXPECT_EQ(buf_a, buf_b);

    EXPECT_EQ(a.sampleDroppedRows(Stage::Csi2, 480),
              b.sampleDroppedRows(Stage::Csi2, 480));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.dropEvent(Stage::Dma), b.dropEvent(Stage::Dma));
}

TEST(FaultInjectorTest, DifferentSeedsDiverge)
{
    std::vector<u8> buf_a(8192, 0), buf_b(8192, 0);
    FaultInjector a(FaultPlan::uniform(0.01, 1));
    FaultInjector b(FaultPlan::uniform(0.01, 2));
    a.corruptBuffer(Stage::Csi2, buf_a.data(), buf_a.size());
    b.corruptBuffer(Stage::Csi2, buf_b.data(), buf_b.size());
    EXPECT_NE(buf_a, buf_b);
}

TEST(FaultInjectorTest, StagesAreDecorrelated)
{
    // Consuming draws on one stage must not shift another stage's stream.
    const FaultPlan plan = FaultPlan::uniform(0.01, 99);
    FaultInjector a(plan);
    FaultInjector b(plan);
    std::vector<u8> scratch(4096, 0);
    a.corruptBuffer(Stage::Csi2, scratch.data(), scratch.size());
    for (int i = 0; i < 1000; ++i)
        a.dropEvent(Stage::Csi2);

    std::vector<u8> buf_a(4096, 0x33), buf_b(4096, 0x33);
    a.corruptBuffer(Stage::FrameMeta, buf_a.data(), buf_a.size());
    b.corruptBuffer(Stage::FrameMeta, buf_b.data(), buf_b.size());
    EXPECT_EQ(buf_a, buf_b);
}

TEST(FaultInjectorTest, ByteErrorRateCalibrated)
{
    FaultPlan plan;
    plan.at(Stage::DramWrite).byte_error_rate = 0.01;
    FaultInjector inj(plan);

    constexpr size_t kBytes = 1 << 20;
    std::vector<u8> buf(kBytes, 0);
    const u64 hit = inj.corruptBuffer(Stage::DramWrite, buf.data(), kBytes);
    // Binomial(1M, 0.01): mean 10486, sigma ~102. Allow +/- 10 sigma.
    EXPECT_GT(hit, 9400u);
    EXPECT_LT(hit, 11600u);

    u64 damaged = 0;
    for (u8 b : buf)
        damaged += (b != 0);
    EXPECT_EQ(damaged, hit); // exactly one bit flipped per victim byte
    EXPECT_EQ(inj.stats().at(Stage::DramWrite).bytes_corrupted, hit);
}

TEST(FaultInjectorTest, DropRateCalibrated)
{
    FaultPlan plan;
    plan.at(Stage::Deadline).drop_rate = 0.5;
    FaultInjector inj(plan);
    int drops = 0;
    for (int i = 0; i < 10000; ++i)
        drops += inj.dropEvent(Stage::Deadline);
    EXPECT_GT(drops, 4500);
    EXPECT_LT(drops, 5500);
    EXPECT_EQ(inj.stats().at(Stage::Deadline).drops,
              static_cast<u64>(drops));
    EXPECT_EQ(inj.stats().at(Stage::Deadline).events, 10000u);
}

TEST(FaultInjectorTest, StallChargesConfiguredCycles)
{
    FaultPlan plan;
    plan.at(Stage::DramRead).stall_rate = 1.0;
    plan.at(Stage::DramRead).stall_cycles = 128;
    FaultInjector inj(plan);
    EXPECT_EQ(inj.stallEvent(Stage::DramRead), 128u);
    EXPECT_EQ(inj.stallEvent(Stage::DramRead), 128u);
    EXPECT_EQ(inj.stats().at(Stage::DramRead).stall_cycles, 256u);
}

TEST(FaultInjectorTest, DroppedRowsSortedAndInRange)
{
    FaultPlan plan;
    plan.at(Stage::Csi2).drop_rate = 0.2;
    FaultInjector inj(plan);
    const std::vector<i32> rows = inj.sampleDroppedRows(Stage::Csi2, 480);
    EXPECT_FALSE(rows.empty());
    i32 prev = -1;
    for (i32 r : rows) {
        EXPECT_GT(r, prev);
        EXPECT_LT(r, 480);
        prev = r;
    }
}

TEST(FaultInjectorTest, StatsResetClearsCounters)
{
    FaultInjector inj(FaultPlan::uniform(0.05, 5));
    std::vector<u8> buf(4096, 0);
    inj.corruptBuffer(Stage::Csi2, buf.data(), buf.size());
    EXPECT_GT(inj.stats().totalBytesCorrupted(), 0u);
    inj.resetStats();
    EXPECT_EQ(inj.stats().totalBytesCorrupted(), 0u);
    EXPECT_EQ(inj.stats().totalDrops(), 0u);
}

} // namespace
} // namespace rpx
