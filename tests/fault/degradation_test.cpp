/**
 * @file
 * DegradationController ladder tests: escalation on consecutive deadline
 * misses, hold-last-good on quarantine, recovery after clean streaks, and
 * level clamping.
 */

#include <gtest/gtest.h>

#include "fault/degradation.hpp"

namespace rpx {
namespace {

using fault::DegradationConfig;
using fault::DegradationController;
using fault::FrameHealth;

constexpr FrameHealth kClean{};
constexpr FrameHealth kMissed{true, false, 0};
constexpr FrameHealth kQuarantined{false, true, 0};

DegradationConfig
testConfig()
{
    DegradationConfig c;
    c.escalate_after_misses = 2;
    c.recover_after_clean = 3;
    c.max_level = 3;
    c.budget_scale_per_level = 0.5;
    c.skip_boost_per_level = 1;
    return c;
}

TEST(Degradation, StartsAtFullQuality)
{
    DegradationController ctl(testConfig());
    EXPECT_EQ(ctl.level(), 0);
    EXPECT_DOUBLE_EQ(ctl.regionBudgetScale(), 1.0);
    EXPECT_EQ(ctl.skipBoost(), 0);
    EXPECT_FALSE(ctl.holdLastGood());
}

TEST(Degradation, EscalatesAfterConsecutiveMisses)
{
    DegradationController ctl(testConfig());
    ctl.onFrame(kMissed);
    EXPECT_EQ(ctl.level(), 0); // one miss is not a streak yet
    ctl.onFrame(kMissed);
    EXPECT_EQ(ctl.level(), 1);
    EXPECT_EQ(ctl.stats().escalations, 1u);
    EXPECT_DOUBLE_EQ(ctl.regionBudgetScale(), 0.5);
    EXPECT_EQ(ctl.skipBoost(), 1);
}

TEST(Degradation, CleanFrameBreaksMissStreak)
{
    DegradationController ctl(testConfig());
    ctl.onFrame(kMissed);
    ctl.onFrame(kClean);
    ctl.onFrame(kMissed);
    EXPECT_EQ(ctl.level(), 0); // never two misses in a row
    EXPECT_EQ(ctl.stats().escalations, 0u);
}

TEST(Degradation, QuarantineHoldsLastGoodWithoutEscalating)
{
    DegradationController ctl(testConfig());
    ctl.onFrame(kQuarantined);
    EXPECT_TRUE(ctl.holdLastGood());
    EXPECT_EQ(ctl.level(), 0); // quarantine alone does not escalate
    EXPECT_EQ(ctl.stats().quarantines, 1u);
    EXPECT_EQ(ctl.stats().held_frames, 1u);

    ctl.onFrame(kClean);
    EXPECT_FALSE(ctl.holdLastGood());
}

TEST(Degradation, QuarantineResetsCleanStreak)
{
    DegradationController ctl(testConfig());
    ctl.onFrame(kMissed);
    ctl.onFrame(kMissed); // level 1
    ctl.onFrame(kClean);
    ctl.onFrame(kClean);
    ctl.onFrame(kQuarantined); // interrupts recovery progress
    ctl.onFrame(kClean);
    ctl.onFrame(kClean);
    EXPECT_EQ(ctl.level(), 1); // streak restarted, not yet recovered
    ctl.onFrame(kClean);
    EXPECT_EQ(ctl.level(), 0);
}

TEST(Degradation, RecoversStepwiseAfterCleanStreaks)
{
    DegradationController ctl(testConfig());
    for (int i = 0; i < 4; ++i)
        ctl.onFrame(kMissed); // two escalations -> level 2
    EXPECT_EQ(ctl.level(), 2);

    for (int i = 0; i < 3; ++i)
        ctl.onFrame(kClean);
    EXPECT_EQ(ctl.level(), 1); // one step back per full clean streak
    for (int i = 0; i < 3; ++i)
        ctl.onFrame(kClean);
    EXPECT_EQ(ctl.level(), 0);
    EXPECT_EQ(ctl.stats().recoveries, 2u);

    for (int i = 0; i < 3; ++i)
        ctl.onFrame(kClean);
    EXPECT_EQ(ctl.level(), 0); // no underflow below full quality
}

TEST(Degradation, ClampsAtMaxLevel)
{
    DegradationController ctl(testConfig());
    for (int i = 0; i < 20; ++i)
        ctl.onFrame(kMissed);
    EXPECT_EQ(ctl.level(), 3);
    EXPECT_DOUBLE_EQ(ctl.regionBudgetScale(), 0.125);
    EXPECT_EQ(ctl.skipBoost(), 3);
    EXPECT_EQ(ctl.stats().escalations, 3u); // clamped, not counted past max
}

TEST(Degradation, TransientFaultsAreCountedNotEscalated)
{
    DegradationController ctl(testConfig());
    FrameHealth h;
    h.transient_faults = 5;
    for (int i = 0; i < 10; ++i)
        ctl.onFrame(h);
    EXPECT_EQ(ctl.level(), 0);
    EXPECT_EQ(ctl.stats().transient_faults, 50u);
    EXPECT_EQ(ctl.stats().frames, 10u);
}

TEST(Degradation, InvalidConfigRejected)
{
    DegradationConfig bad = testConfig();
    bad.escalate_after_misses = 0;
    EXPECT_THROW(DegradationController{bad}, std::invalid_argument);

    bad = testConfig();
    bad.budget_scale_per_level = 1.5;
    EXPECT_THROW(DegradationController{bad}, std::invalid_argument);
}

} // namespace
} // namespace rpx
