/** @file Unit tests for the register file, driver, and user-space API. */

#include <gtest/gtest.h>

#include "runtime/api.hpp"
#include "runtime/driver.hpp"
#include "runtime/registers.hpp"

namespace rpx {
namespace {

TEST(RegisterFile, LoadAndCommitRegions)
{
    RegisterFile regs(16);
    const std::vector<RegionLabel> regions = {
        {1, 2, 3, 4, 2, 3, 1},
        {5, 6, 7, 8, 1, 1, 0},
    };
    regs.loadRegions(regions);
    ASSERT_EQ(regs.activeRegions().size(), 2u);
    EXPECT_EQ(regs.activeRegions()[0], regions[0]);
    EXPECT_EQ(regs.activeRegions()[1], regions[1]);
    EXPECT_TRUE(regs.enabled());
    EXPECT_EQ(regs.commitCount(), 1u);
}

TEST(RegisterFile, CommitIsAtomic)
{
    RegisterFile regs(8);
    regs.loadRegions({{1, 1, 2, 2, 1, 1, 0}});
    // Stage new values without committing: active list is unchanged.
    regs.writeWord(static_cast<u32>(RegOffset::RegionCount), 2);
    EXPECT_EQ(regs.activeRegions().size(), 1u);
    // The commit strobe latches the staged state.
    regs.writeWord(static_cast<u32>(RegOffset::Control), 0x3);
    EXPECT_EQ(regs.activeRegions().size(), 2u);
}

TEST(RegisterFile, CapacityEnforced)
{
    RegisterFile regs(2);
    std::vector<RegionLabel> three(3, RegionLabel{0, 0, 1, 1, 1, 1, 0});
    EXPECT_THROW(regs.loadRegions(three), std::invalid_argument);
}

TEST(RegisterFile, OutOfRangeAccessThrows)
{
    RegisterFile regs(1);
    EXPECT_THROW(regs.writeWord(100000, 1), std::invalid_argument);
    EXPECT_THROW(regs.readWord(100000), std::invalid_argument);
}

TEST(RegisterFile, AxiWriteCountMatchesRecordSize)
{
    RegisterFile regs(8);
    const u64 before = regs.writeCount();
    regs.loadRegions({{0, 0, 4, 4, 1, 1, 0}});
    // 1 count + 7 record words + 1 control.
    EXPECT_EQ(regs.writeCount() - before, 9u);
}

TEST(Driver, ValidatesAndSorts)
{
    RegisterFile regs(16);
    RegionDriver driver(regs, 100, 100);
    std::vector<RegionLabel> unsorted = {
        {0, 50, 10, 10, 1, 1, 0},
        {0, 5, 10, 10, 1, 1, 0},
    };
    driver.setRegionLabels(unsorted);
    EXPECT_EQ(regs.activeRegions()[0].y, 5);
    EXPECT_EQ(regs.activeRegions()[1].y, 50);
    EXPECT_EQ(driver.ioctlCount(), 1u);
}

TEST(Driver, RejectsInvalidRegions)
{
    RegisterFile regs(16);
    RegionDriver driver(regs, 100, 100);
    EXPECT_THROW(driver.setRegionLabels({{500, 500, 10, 10, 1, 1, 0}}),
                 std::invalid_argument);
    EXPECT_THROW(driver.setRegionLabels({{0, 0, 10, 10, -1, 1, 0}}),
                 std::invalid_argument);
}

TEST(Driver, ProgramsFrameGeometry)
{
    RegisterFile regs(4);
    RegionDriver driver(regs, 640, 480);
    EXPECT_EQ(regs.readWord(static_cast<u32>(RegOffset::FrameWidth)),
              640u);
    EXPECT_EQ(regs.readWord(static_cast<u32>(RegOffset::FrameHeight)),
              480u);
    (void)driver;
}

TEST(Runtime, DefaultsToFullFrame)
{
    RegisterFile regs(16);
    RegionDriver driver(regs, 64, 48);
    RegionRuntime runtime(driver);
    const auto &labels = runtime.beginFrame();
    ASSERT_EQ(labels.size(), 1u);
    EXPECT_EQ(labels[0], fullFrameRegion(64, 48));
}

TEST(Runtime, PersistentListSticksAcrossFrames)
{
    RegisterFile regs(16);
    RegionDriver driver(regs, 64, 48);
    RegionRuntime runtime(driver);
    runtime.setRegionLabels({{1, 1, 8, 8, 1, 1, 0}});
    EXPECT_EQ(runtime.beginFrame().size(), 1u);
    EXPECT_EQ(runtime.beginFrame()[0].w, 8);
    EXPECT_EQ(runtime.beginFrame()[0].w, 8);
}

TEST(Runtime, OneShotListRevertsToPersistent)
{
    RegisterFile regs(16);
    RegionDriver driver(regs, 64, 48);
    RegionRuntime runtime(driver);
    runtime.setRegionLabels({{1, 1, 8, 8, 1, 1, 0}}); // persistent
    runtime.setRegionLabels({{2, 2, 4, 4, 1, 1, 0}}, /*persist=*/false);
    EXPECT_EQ(runtime.beginFrame()[0].w, 4); // the one-shot list
    EXPECT_EQ(runtime.beginFrame()[0].w, 8); // back to persistent
}

TEST(Runtime, UsageStatisticsRecorded)
{
    RegisterFile regs(16);
    RegionDriver driver(regs, 64, 48);
    RegionRuntime runtime(driver);
    runtime.setRegionLabels({
        {0, 0, 8, 16, 2, 3, 0},
        {10, 10, 32, 4, 1, 1, 0},
    });
    runtime.beginFrame();
    const RegionUsageStats &usage = runtime.usage();
    EXPECT_EQ(usage.min_w, 8);
    EXPECT_EQ(usage.max_w, 32);
    EXPECT_EQ(usage.min_h, 4);
    EXPECT_EQ(usage.max_h, 16);
    EXPECT_EQ(usage.max_stride, 2);
    EXPECT_EQ(usage.max_skip, 3);
}

TEST(Runtime, OnlyReprogramsOnChange)
{
    RegisterFile regs(16);
    RegionDriver driver(regs, 64, 48);
    RegionRuntime runtime(driver);
    runtime.setRegionLabels({{1, 1, 8, 8, 1, 1, 0}});
    runtime.beginFrame();
    const u64 ioctls = driver.ioctlCount();
    runtime.beginFrame(); // unchanged list: no new driver call
    EXPECT_EQ(driver.ioctlCount(), ioctls);
}

} // namespace
} // namespace rpx
