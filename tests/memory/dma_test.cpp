/** @file Unit tests for the line-burst DMA writer. */

#include <gtest/gtest.h>

#include "memory/dma.hpp"

namespace rpx {
namespace {

TEST(Dma, BuffersUntilFlush)
{
    DramModel dram(1 << 16);
    DmaWriter dma(dram, 0x100);
    dma.push(1);
    dma.push(2);
    EXPECT_EQ(dma.pending(), 2u);
    EXPECT_EQ(dma.bytesCommitted(), 0u);
    EXPECT_EQ(dram.stats().write_transactions, 0u);

    dma.flush();
    EXPECT_EQ(dma.pending(), 0u);
    EXPECT_EQ(dma.bytesCommitted(), 2u);
    EXPECT_EQ(dram.stats().write_transactions, 1u);
    EXPECT_EQ(dram.peek(0x100), 1);
    EXPECT_EQ(dram.peek(0x101), 2);
}

TEST(Dma, SequentialLines)
{
    DramModel dram(1 << 16);
    DmaWriter dma(dram, 0);
    for (u8 v = 0; v < 10; ++v)
        dma.push(v);
    dma.flush();
    for (u8 v = 10; v < 20; ++v)
        dma.push(v);
    dma.flush();
    EXPECT_EQ(dma.burstsIssued(), 2u);
    for (u8 v = 0; v < 20; ++v)
        EXPECT_EQ(dram.peek(v), v);
}

TEST(Dma, AutoFlushAtCapacity)
{
    DramModel dram(1 << 16);
    DmaWriter dma(dram, 0, /*line_capacity=*/4);
    for (u8 v = 0; v < 6; ++v)
        dma.push(v);
    // One automatic flush at 4 bytes, 2 still pending.
    EXPECT_EQ(dma.burstsIssued(), 1u);
    EXPECT_EQ(dma.pending(), 2u);
    dma.flush();
    EXPECT_EQ(dma.bytesCommitted(), 6u);
}

TEST(Dma, FlushEmptyIsNoop)
{
    DramModel dram(1 << 16);
    DmaWriter dma(dram, 0);
    dma.flush();
    EXPECT_EQ(dma.burstsIssued(), 0u);
    EXPECT_EQ(dram.stats().write_transactions, 0u);
}

TEST(Dma, BlockPush)
{
    DramModel dram(1 << 16);
    DmaWriter dma(dram, 0x40);
    const u8 block[5] = {9, 8, 7, 6, 5};
    dma.push(block, 5);
    dma.flush();
    EXPECT_EQ(dram.read(0x40, 5), (std::vector<u8>{9, 8, 7, 6, 5}));
    EXPECT_EQ(dma.cursor(), 0x40u + 5u);
}

} // namespace
} // namespace rpx
