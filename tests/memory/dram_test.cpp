/** @file Unit tests for the DRAM model and framebuffer allocator. */

#include <gtest/gtest.h>

#include "memory/dram.hpp"
#include "memory/framebuffer.hpp"

namespace rpx {
namespace {

TEST(Dram, WriteReadRoundTrip)
{
    DramModel dram(1 << 20);
    const std::vector<u8> data{1, 2, 3, 4, 5};
    dram.write(100, data);
    EXPECT_EQ(dram.read(100, 5), data);
}

TEST(Dram, TrafficCounters)
{
    DramModel dram(1 << 20);
    dram.write(0, std::vector<u8>(100, 7));
    dram.read(0, 40);
    const DramStats &s = dram.stats();
    EXPECT_EQ(s.bytes_written, 100u);
    EXPECT_EQ(s.bytes_read, 40u);
    EXPECT_EQ(s.write_transactions, 1u);
    EXPECT_EQ(s.read_transactions, 1u);
    EXPECT_EQ(s.totalBytes(), 140u);
}

TEST(Dram, BurstCounting)
{
    DramModel dram(1 << 20);
    dram.write(0, std::vector<u8>(65, 0)); // 64 + 1 -> 2 bursts
    EXPECT_EQ(dram.stats().write_bursts, 2u);
    dram.read(0, 64); // exactly one burst
    EXPECT_EQ(dram.stats().read_bursts, 1u);
}

TEST(Dram, OutOfRangeThrows)
{
    DramModel dram(128);
    EXPECT_THROW(dram.write(120, std::vector<u8>(16, 0)),
                 std::invalid_argument);
    EXPECT_THROW(dram.read(1000, 1), std::invalid_argument);
}

TEST(Dram, ZeroLengthIsFree)
{
    DramModel dram(128);
    dram.write(0, nullptr, 0);
    EXPECT_EQ(dram.stats().write_transactions, 0u);
}

TEST(Dram, ResetStats)
{
    DramModel dram(1 << 16);
    dram.write(0, std::vector<u8>(10, 1));
    dram.resetStats();
    EXPECT_EQ(dram.stats().totalBytes(), 0u);
    // Contents survive a stats reset.
    EXPECT_EQ(dram.peek(0), 1);
}

TEST(FramebufferAllocator, AlignedNonOverlapping)
{
    FramebufferAllocator alloc(0x1000, 4096);
    const BufferRange a = alloc.allocate(100, "a");
    const BufferRange b = alloc.allocate(100, "b");
    EXPECT_EQ(a.base % 4096, 0u);
    EXPECT_EQ(b.base % 4096, 0u);
    EXPECT_GE(b.base, a.end());
}

TEST(FramebufferAllocator, FindAndCovering)
{
    FramebufferAllocator alloc;
    const BufferRange a = alloc.allocate(64, "pixels");
    EXPECT_EQ(alloc.find("pixels").base, a.base);
    EXPECT_THROW(alloc.find("missing"), std::invalid_argument);
    EXPECT_EQ(alloc.covering(a.base + 10), &alloc.allocations()[0]);
    EXPECT_EQ(alloc.covering(a.base + 64), nullptr);
}

TEST(FramebufferAllocator, DuplicateNameThrows)
{
    FramebufferAllocator alloc;
    alloc.allocate(10, "x");
    EXPECT_THROW(alloc.allocate(10, "x"), std::invalid_argument);
}

TEST(FramebufferAllocator, AllocatedBytes)
{
    FramebufferAllocator alloc;
    alloc.allocate(100, "a");
    alloc.allocate(200, "b");
    EXPECT_EQ(alloc.allocatedBytes(), 300u);
}

} // namespace
} // namespace rpx
