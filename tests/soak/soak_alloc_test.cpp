/**
 * @file
 * Allocation-rate regression guard for the soak path (ISSUE 9).
 *
 * Replaces global operator new/delete with counting wrappers (own binary
 * for the same reason as decode_alloc_test: the hooks are process-global)
 * and runs a churn-free soak, sampling the allocation counter at frame
 * milestones through the frame hook. The per-frame allocation rate of a
 * late window must not creep above the early window's — the signal that
 * something on the per-frame path (journal accounting, queue traffic,
 * decoder pools) started leaking or re-allocating per frame.
 *
 * Per-frame allocations as such are expected (each frame materialises an
 * Image and a telemetry record); *growth* of the rate is the bug.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "soak/soak.hpp"

namespace {

std::atomic<unsigned long long> g_allocations{0};

unsigned long long
allocationCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

} // namespace

// Counting global allocator. Deliberately minimal: count + malloc/free.
void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace rpx {
namespace {

TEST(SoakAlloc, SteadyStateAllocationRateDoesNotCreep)
{
    // Milestones bracket two equal-width windows well past warm-up.
    constexpr u64 kW1Lo = 100, kW1Hi = 250, kW2Lo = 400, kW2Hi = 550;
    std::atomic<unsigned long long> at_w1_lo{0}, at_w1_hi{0};
    std::atomic<unsigned long long> at_w2_lo{0}, at_w2_hi{0};

    soak::SoakOptions o;
    o.streams = 4;
    o.duration_s = 5.0; // 150 frames per slot = 600 total
    o.fps = 30.0;
    o.seed = 77;
    o.faults = true;
    o.churn = false; // churn rebuilds StreamContexts; measure steady state
    o.width = 96;
    o.height = 64;
    o.checkpoint_every = 0; // checkpoints allocate log entries
    o.frame_hook = [&](u64 g) {
        if (g == kW1Lo)
            at_w1_lo.store(allocationCount());
        else if (g == kW1Hi)
            at_w1_hi.store(allocationCount());
        else if (g == kW2Lo)
            at_w2_lo.store(allocationCount());
        else if (g == kW2Hi)
            at_w2_hi.store(allocationCount());
    };
    const soak::SoakResult res = soak::runSoak(o);

    ASSERT_TRUE(res.ok) << (res.violations.empty()
                                ? "not ok without violations"
                                : res.violations.front());
    EXPECT_EQ(res.frames, 600u);

    const unsigned long long w1 = at_w1_hi.load() - at_w1_lo.load();
    const unsigned long long w2 = at_w2_hi.load() - at_w2_lo.load();
    ASSERT_GT(at_w1_lo.load(), 0u);
    ASSERT_GT(w1, 0u);
    // Identical work per window; allow 50% headroom plus a fixed slack
    // for thread-interleaving noise at the window boundaries before
    // calling it a creep.
    EXPECT_LE(w2, w1 + w1 / 2 + 512)
        << "per-frame allocation rate grew between identical windows: "
        << w1 << " -> " << w2;
}

} // namespace
} // namespace rpx
