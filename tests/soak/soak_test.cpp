/**
 * @file
 * Soak-harness tests (ISSUE 9): a short churn+fault soak must complete
 * its whole frame budget with zero conservation drift, the same seed
 * must reproduce the same model outcome, trace replay must drive the
 * harness from a recorded trace, and the emitted report must be
 * consumable by the bench/trend tooling.
 */

#include <gtest/gtest.h>

#include <fstream>

#include "common/json.hpp"
#include "obs/bench_report.hpp"
#include "sim/trace_io.hpp"
#include "soak/soak.hpp"

namespace rpx {
namespace {

soak::SoakOptions
shortSoak(u32 streams, double duration_s)
{
    soak::SoakOptions o;
    o.streams = streams;
    o.duration_s = duration_s;
    o.fps = 30.0;
    o.seed = 1234;
    o.faults = true;
    o.churn = true;
    o.width = 96;
    o.height = 64;
    o.checkpoint_every = 64;
    return o;
}

TEST(Soak, ChurnWithFaultsCompletesBudgetWithZeroDrift)
{
    const soak::SoakOptions o = shortSoak(64, 0.2); // 6 frames per slot
    const soak::SoakResult res = soak::runSoak(o);

    ASSERT_TRUE(res.ok) << (res.violations.empty()
                                ? "not ok without violations"
                                : res.violations.front());
    EXPECT_EQ(res.frames, res.frames_budget);
    EXPECT_EQ(res.frames_budget, 64u * 6u);
    EXPECT_EQ(res.final_frames_drift, 0u);
    EXPECT_EQ(res.final_bytes_drift, 0);
    EXPECT_EQ(res.fleet.errors, 0u);
    // 6-frame budgets force every slot through several generations.
    EXPECT_GT(res.generations, 64u);
    EXPECT_GE(res.checkpoints, 1u);
    EXPECT_GT(res.fault_drops, 0u);
    EXPECT_GT(res.rss_peak_kb, 0u);
    // Every generation start shows up as one fleet stream report.
    EXPECT_EQ(res.fleet.streams.size(), res.generations);
}

TEST(Soak, SameSeedReproducesModelOutcome)
{
    const soak::SoakOptions o = shortSoak(8, 0.5);
    const soak::SoakResult a = soak::runSoak(o);
    const soak::SoakResult b = soak::runSoak(o);

    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.generations, b.generations);
    EXPECT_EQ(a.fault_drops, b.fault_drops);
    EXPECT_EQ(a.fault_byte_errors, b.fault_byte_errors);
    EXPECT_EQ(a.degrade_escalations, b.degrade_escalations);
    EXPECT_EQ(a.degrade_recoveries, b.degrade_recoveries);
    EXPECT_EQ(a.fleet.quarantined, b.fleet.quarantined);
    EXPECT_EQ(a.fleet.deadline_misses, b.fleet.deadline_misses);
    EXPECT_EQ(a.fleet.transient_faults, b.fleet.transient_faults);
    EXPECT_EQ(a.fleet.bytes_written, b.fleet.bytes_written);
    EXPECT_EQ(a.fleet.bytes_read, b.fleet.bytes_read);
    EXPECT_EQ(a.fleet.metadata_bytes, b.fleet.metadata_bytes);
    // Every model metric of the embedded bench report matches too.
    for (const auto &[name, metric] : a.bench.metrics) {
        if (metric.kind != "model")
            continue;
        const auto it = b.bench.metrics.find(name);
        ASSERT_NE(it, b.bench.metrics.end()) << name;
        EXPECT_EQ(metric.value, it->second.value) << name;
    }
}

TEST(Soak, DifferentSeedChangesTheFaultPattern)
{
    soak::SoakOptions o = shortSoak(8, 0.5);
    const soak::SoakResult a = soak::runSoak(o);
    o.seed = 4321;
    const soak::SoakResult b = soak::runSoak(o);

    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    // Same budget, different fault/churn realisation.
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_NE(a.fleet.bytes_written, b.fleet.bytes_written);
}

TEST(Soak, TraceReplayDrivesGeometryAndLabels)
{
    const std::string path = testing::TempDir() + "soak_trace.csv";
    TraceFile tf;
    tf.width = 80;
    tf.height = 60;
    tf.trace = {
        {{0, 0, 80, 60, 1, 1, 0}},
        {{0, 0, 80, 60, 2, 1, 0}, {8, 8, 32, 24, 1, 1, 0}},
        {{0, 0, 80, 60, 4, 2, 0}},
    };
    writeTraceFile(path, tf);

    soak::SoakOptions o;
    o.streams = 2;
    o.duration_s = 0.4; // 12 frames per slot: the 3-frame trace loops
    o.fps = 30.0;
    o.seed = 99;
    o.faults = false;
    o.churn = false;
    o.trace_path = path;
    o.checkpoint_every = 8;
    const soak::SoakResult res = soak::runSoak(o);

    ASSERT_TRUE(res.ok) << (res.violations.empty()
                                ? "not ok without violations"
                                : res.violations.front());
    EXPECT_EQ(res.frames, 24u);
    EXPECT_EQ(res.generations, 2u);
    EXPECT_EQ(res.fleet.streams_completed, 2u);
    EXPECT_GT(res.fleet.bytes_written, 0u);
    // Without churn both streams complete naturally.
    for (const auto &s : res.fleet.streams)
        EXPECT_TRUE(s.completed);
}

TEST(Soak, ReportRoundTripsThroughBenchTooling)
{
    soak::SoakOptions o = shortSoak(4, 0.2);
    const soak::SoakResult res = soak::runSoak(o);
    ASSERT_TRUE(res.ok);

    const std::string js = soak::toJson(res);
    const json::Value v = json::parse(js);
    EXPECT_EQ(v.stringOr("schema", ""), "rpx-soak-report-v1");
    EXPECT_TRUE(v.at("ok").type() == json::Value::Type::Bool);
    EXPECT_EQ(static_cast<u64>(v.numberOr("frames", -1)), res.frames);

    // The embedded bench report unwraps through the standard reader —
    // this is the path trend_compare takes on a soak report.
    const obs::BenchReport bench = obs::benchReportFromJson(v);
    EXPECT_EQ(bench.bench, "soak");
    const auto it = bench.metrics.find("soak.frames");
    ASSERT_NE(it, bench.metrics.end());
    EXPECT_EQ(static_cast<u64>(it->second.value), res.frames);
    EXPECT_EQ(it->second.kind, "model");
    const auto drift = bench.metrics.find("soak.frames_drift");
    ASSERT_NE(drift, bench.metrics.end());
    EXPECT_EQ(drift->second.value, 0.0);
}

/**
 * Chaos soak: wall-clock perturbation (capture jitter, worker stalls,
 * slow leases, queue bursts) plus the chaos fault plan's deterministic
 * shed verdicts. The run must stay conservation-clean, account every
 * shed frame, and show at least one quarantine → recovery transition —
 * the guard layer absorbing the chaos it exists for.
 */
TEST(Soak, ChaosSoakShedsRecoversAndConserves)
{
    soak::SoakOptions o = shortSoak(8, 2.0);
    o.seed = 77;
    o.chaos = true;
    const soak::SoakResult res = soak::runSoak(o);

    ASSERT_TRUE(res.ok) << (res.violations.empty()
                                ? "not ok without violations"
                                : res.violations.front());
    // Shed frames are accounted but not delivered, so the churn ledger
    // schedules make-up frames until the delivered count hits the
    // budget: journal total == budget + shed, exactly.
    EXPECT_EQ(res.frames, res.frames_budget + res.shed_frames);
    EXPECT_EQ(res.final_frames_drift, 0u);
    EXPECT_EQ(res.final_bytes_drift, 0);
    EXPECT_EQ(res.fleet.errors, 0u);
    // The chaos plan's Stage::Shed verdicts are deterministic model
    // events; the wall-clock chaos sites report hits independently.
    EXPECT_GT(res.shed_frames, 0u);
    EXPECT_EQ(res.shed_frames, res.fleet.shed_frames);
    EXPECT_GE(res.health_recoveries, 1u);
    EXPECT_GT(res.chaos_hits, 0u);
}

/** Chaos perturbs time only: the model outcome is seed-reproducible. */
TEST(Soak, ChaosSameSeedReproducesModelOutcome)
{
    soak::SoakOptions o = shortSoak(8, 0.5);
    o.seed = 77;
    o.chaos = true;
    const soak::SoakResult a = soak::runSoak(o);
    const soak::SoakResult b = soak::runSoak(o);

    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.generations, b.generations);
    EXPECT_EQ(a.shed_frames, b.shed_frames);
    EXPECT_EQ(a.health_recoveries, b.health_recoveries);
    EXPECT_EQ(a.fleet.quarantined, b.fleet.quarantined);
    EXPECT_EQ(a.fleet.bytes_written, b.fleet.bytes_written);
    EXPECT_EQ(a.fleet.metadata_bytes, b.fleet.metadata_bytes);
    EXPECT_EQ(a.fleet.health_transitions, b.fleet.health_transitions);
}

TEST(Soak, RejectsBadOptions)
{
    soak::SoakOptions o;
    o.streams = 0;
    EXPECT_THROW(soak::runSoak(o), std::exception);
    o = soak::SoakOptions{};
    o.duration_s = -1.0;
    EXPECT_THROW(soak::runSoak(o), std::exception);
    o = soak::SoakOptions{};
    o.max_streams = 2;
    o.streams = 4;
    EXPECT_THROW(soak::runSoak(o), std::exception);
    o = soak::SoakOptions{};
    o.trace_path = testing::TempDir() + "definitely_missing_trace.csv";
    EXPECT_THROW(soak::runSoak(o), std::exception);
}

} // namespace
} // namespace rpx
