/** @file Unit tests for the Table 6 / Appendix A.2 energy model. */

#include <gtest/gtest.h>

#include "energy/energy_model.hpp"

namespace rpx {
namespace {

TEST(EnergyModel, Table6Constants)
{
    const EnergyConstants c;
    EXPECT_DOUBLE_EQ(c.sense_pj, 595.0);
    EXPECT_DOUBLE_EQ(c.dram_write_pj + c.dram_read_pj, 700.0); // ~677 rounded
    EXPECT_DOUBLE_EQ(2.0 * c.ddr_comm_crossing_pj, 2800.0);
    EXPECT_DOUBLE_EQ(c.mac_pj, 4.6);
}

TEST(EnergyModel, LinearInActivity)
{
    const EnergyModel model;
    PixelActivity a;
    a.dram_pixels_written = 1000;
    const double e1 = model.energy(a).total();
    a.dram_pixels_written = 2000;
    EXPECT_NEAR(model.energy(a).total(), 2.0 * e1, 1e-15);
}

TEST(EnergyModel, BreakdownComponents)
{
    const EnergyModel model;
    PixelActivity a;
    a.sensed_pixels = 1000;
    a.csi_pixels = 1000;
    a.dram_pixels_written = 1000;
    a.dram_pixels_read = 1000;
    a.mac_ops = 1000;
    const EnergyBreakdown e = model.energy(a);
    EXPECT_NEAR(e.sensing, 1000 * 595e-12, 1e-15);
    EXPECT_NEAR(e.communication, 1000 * (1000e-12 + 2800e-12), 1e-15);
    EXPECT_NEAR(e.storage, 1000 * 700e-12, 1e-15);
    EXPECT_NEAR(e.computation, 1000 * 4.6e-12, 1e-15);
    EXPECT_NEAR(e.total(),
                e.sensing + e.communication + e.storage + e.computation,
                1e-18);
}

TEST(EnergyModel, PaperHeadlineRp10SavesRoughly18mJPerFrame)
{
    // §6.2: at 4K, RP10 discards ~64% of pixels; the saved write+read
    // traffic is worth ~18 mJ per frame, i.e. ~550 mW at 30 fps.
    const EnergyModel model;
    const u64 frame_pixels = 3840ULL * 2160ULL;
    const u64 saved = static_cast<u64>(frame_pixels * 0.62);
    const double saved_j = model.savedPerFrame(saved);
    EXPECT_NEAR(saved_j, 18e-3, 2e-3);
    EXPECT_NEAR(saved_j * 30.0, 0.55, 0.06);
}

TEST(EnergyModel, PowerDividesByTime)
{
    const EnergyModel model;
    PixelActivity a;
    a.dram_pixels_written = 1000000;
    const double e = model.energy(a).total();
    EXPECT_NEAR(model.power(a, 2.0), e / 2.0, 1e-15);
    EXPECT_THROW(model.power(a, 0.0), std::invalid_argument);
}

TEST(EnergyModel, CommunicationDominatesCompute)
{
    // Table 6's point: moving a pixel costs 3 orders of magnitude more
    // than computing on it.
    const EnergyConstants c;
    EXPECT_GT(2.0 * c.ddr_comm_crossing_pj / c.mac_pj, 500.0);
}

TEST(EnergyModel, CustomConstants)
{
    EnergyConstants c;
    c.dram_write_pj = 100.0;
    c.dram_read_pj = 50.0;
    c.ddr_comm_crossing_pj = 0.0;
    const EnergyModel model(c);
    PixelActivity a;
    a.dram_pixels_written = 10;
    a.dram_pixels_read = 10;
    EXPECT_NEAR(model.energy(a).storage, 10 * 150e-12, 1e-18);
    EXPECT_NEAR(model.savedPerFrame(10), 10 * 150e-12, 1e-18);
}

} // namespace
} // namespace rpx
