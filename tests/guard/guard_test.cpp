/** @file Unit tests for the overload-protection layer (rpx::guard) and
 *  the fleet chaos injector (rpx::fault::ChaosInjector). */

#include <gtest/gtest.h>

#include <string>

#include "fault/chaos.hpp"
#include "fault/fault.hpp"
#include "guard/guard.hpp"

namespace rpx {
namespace {

guard::HealthSignal
cleanFrame()
{
    return {};
}

guard::HealthSignal
quarantinedFrame()
{
    guard::HealthSignal s;
    s.decode_quarantined = true;
    return s;
}

guard::HealthSignal
shedFrame()
{
    guard::HealthSignal s;
    s.shed = true;
    return s;
}

TEST(HealthMachine, StartsHealthyAndStaysOnCleanFrames)
{
    guard::HealthMachine hm;
    for (int i = 0; i < 10; ++i)
        hm.onFrame(cleanFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Healthy);
    EXPECT_EQ(hm.transitions(), 0u);
    EXPECT_EQ(hm.recoveries(), 0u);
}

TEST(HealthMachine, SingleDirtyFrameDegrades)
{
    guard::HealthMachine hm;
    hm.onFrame(shedFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Degraded);
    EXPECT_EQ(hm.transitions(), 1u);
}

TEST(HealthMachine, QuarantineStreakQuarantines)
{
    guard::HealthConfig cfg;
    cfg.quarantine_streak = 3;
    guard::HealthMachine hm(cfg);
    hm.onFrame(quarantinedFrame());
    hm.onFrame(quarantinedFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Degraded);
    hm.onFrame(quarantinedFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Quarantined);
}

TEST(HealthMachine, BrokenStreakDoesNotQuarantine)
{
    guard::HealthConfig cfg;
    cfg.quarantine_streak = 3;
    guard::HealthMachine hm(cfg);
    for (int i = 0; i < 6; ++i) {
        hm.onFrame(quarantinedFrame());
        hm.onFrame(quarantinedFrame());
        hm.onFrame(cleanFrame()); // streak broken every time
    }
    EXPECT_NE(hm.state(), guard::HealthState::Quarantined);
}

TEST(HealthMachine, RecoversThroughDegradedToHealthy)
{
    guard::HealthConfig cfg;
    cfg.quarantine_streak = 2;
    cfg.recover_streak = 3;
    guard::HealthMachine hm(cfg);
    hm.onFrame(quarantinedFrame());
    hm.onFrame(quarantinedFrame());
    ASSERT_EQ(hm.state(), guard::HealthState::Quarantined);

    // Three decoded frames step back to Degraded (the recovery the
    // counter tracks), three fully-clean frames then restore Healthy.
    hm.onFrame(cleanFrame());
    hm.onFrame(cleanFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Quarantined);
    hm.onFrame(cleanFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Degraded);
    EXPECT_EQ(hm.recoveries(), 1u);
    hm.onFrame(cleanFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Healthy);
    EXPECT_EQ(hm.recoveries(), 1u);
}

TEST(HealthMachine, QuarantineRecoveryToleratesShedFrames)
{
    // Quarantined is about decode integrity: a stream that sheds under
    // load but decodes what it keeps still earns probation.
    guard::HealthConfig cfg;
    cfg.quarantine_streak = 2;
    cfg.recover_streak = 2;
    guard::HealthMachine hm(cfg);
    hm.onFrame(quarantinedFrame());
    hm.onFrame(quarantinedFrame());
    ASSERT_EQ(hm.state(), guard::HealthState::Quarantined);
    hm.onFrame(shedFrame());
    hm.onFrame(shedFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Degraded);
    EXPECT_EQ(hm.recoveries(), 1u);
    // But the final step to Healthy needs fully-clean frames.
    hm.onFrame(shedFrame());
    hm.onFrame(shedFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Degraded);
    hm.onFrame(cleanFrame());
    hm.onFrame(cleanFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Healthy);
}

TEST(HealthMachine, EvictIsTerminal)
{
    guard::HealthMachine hm;
    hm.evict();
    EXPECT_EQ(hm.state(), guard::HealthState::Evicted);
    for (int i = 0; i < 20; ++i)
        hm.onFrame(cleanFrame());
    EXPECT_EQ(hm.state(), guard::HealthState::Evicted);
    EXPECT_EQ(hm.transitions(), 1u);
}

TEST(HealthMachine, DeterministicForSameSignalSequence)
{
    guard::HealthMachine a, b;
    const guard::HealthSignal seq[] = {quarantinedFrame(), shedFrame(),
                                       cleanFrame(), quarantinedFrame(),
                                       quarantinedFrame(),
                                       quarantinedFrame(), cleanFrame()};
    for (const auto &s : seq) {
        a.onFrame(s);
        b.onFrame(s);
    }
    EXPECT_EQ(a.state(), b.state());
    EXPECT_EQ(a.transitions(), b.transitions());
    EXPECT_EQ(a.recoveries(), b.recoveries());
}

TEST(GuardNames, AllEnumeratorsHaveNames)
{
    EXPECT_STREQ(guard::healthStateName(guard::HealthState::Healthy),
                 "healthy");
    EXPECT_STREQ(guard::healthStateName(guard::HealthState::Degraded),
                 "degraded");
    EXPECT_STREQ(
        guard::healthStateName(guard::HealthState::Quarantined),
        "quarantined");
    EXPECT_STREQ(guard::healthStateName(guard::HealthState::Evicted),
                 "evicted");
    EXPECT_STREQ(
        guard::admissionPolicyName(guard::AdmissionPolicy::HardCapOnly),
        "hard_cap");
    EXPECT_STREQ(guard::admissionPolicyName(
                     guard::AdmissionPolicy::CapacityModel),
                 "capacity");
}

TEST(FaultStage, ShedStageIsNamedAndCounted)
{
    EXPECT_STREQ(fault::stageName(fault::Stage::Shed), "shed");
    EXPECT_EQ(static_cast<size_t>(fault::Stage::Shed) + 1,
              fault::kStageCount);
}

TEST(Chaos, SiteNamesCoverAllSites)
{
    EXPECT_STREQ(fault::chaosSiteName(fault::ChaosSite::CaptureJitter),
                 "capture_jitter");
    EXPECT_STREQ(fault::chaosSiteName(fault::ChaosSite::WorkerStall),
                 "worker_stall");
    EXPECT_STREQ(fault::chaosSiteName(fault::ChaosSite::SlowLease),
                 "slow_lease");
    EXPECT_STREQ(fault::chaosSiteName(fault::ChaosSite::QueueBurst),
                 "queue_burst");
}

TEST(Chaos, DecisionsAreDeterministicAndOrderFree)
{
    fault::ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 42;
    cfg.worker_stall_rate = 0.3;
    fault::ChaosInjector a(cfg), b(cfg);

    // Same (site, stream, frame) -> same verdict. `b` is consulted in
    // reverse order (and with extra interleaved draws) to show the
    // decision is a pure hash, not a shared RNG stream.
    for (u32 s = 0; s < 8; ++s)
        for (u64 f = 0; f < 64; ++f) {
            (void)b.wouldHit(fault::ChaosSite::WorkerStall, 7 - s,
                             63 - f);
            ASSERT_EQ(a.wouldHit(fault::ChaosSite::WorkerStall, s, f),
                      b.wouldHit(fault::ChaosSite::WorkerStall, s, f));
        }
}

TEST(Chaos, HitRateTracksConfiguredRate)
{
    fault::ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 7;
    cfg.worker_stall_rate = 0.25;
    fault::ChaosInjector inj(cfg);
    int hits = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        hits += inj.wouldHit(fault::ChaosSite::WorkerStall, 3,
                             static_cast<u64>(i))
                    ? 1
                    : 0;
    EXPECT_GT(hits, n / 8);     // well above half the rate
    EXPECT_LT(hits, (3 * n) / 8); // well below 1.5x the rate
}

TEST(Chaos, ReplacementStreamsDrawIndependentSchedules)
{
    // Stream ids are never reused across generations; a replacement
    // (fresh id) must not inherit the departed stream's chaos schedule.
    fault::ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 99;
    cfg.worker_stall_rate = 0.5;
    fault::ChaosInjector inj(cfg);
    int same = 0;
    const int n = 512;
    for (u64 f = 0; f < n; ++f)
        same += inj.wouldHit(fault::ChaosSite::WorkerStall, 11, f) ==
                        inj.wouldHit(fault::ChaosSite::WorkerStall, 12, f)
                    ? 1
                    : 0;
    // Identical schedules would agree on every frame; independent ones
    // agree about half the time.
    EXPECT_LT(same, (3 * n) / 4);
    EXPECT_GT(same, n / 4);
}

TEST(Chaos, SitesDrawIndependently)
{
    fault::ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 5;
    cfg.worker_stall_rate = 0.5;
    cfg.slow_lease_rate = 0.5;
    fault::ChaosInjector inj(cfg);
    int same = 0;
    const int n = 512;
    for (u64 f = 0; f < n; ++f)
        same += inj.wouldHit(fault::ChaosSite::WorkerStall, 1, f) ==
                        inj.wouldHit(fault::ChaosSite::SlowLease, 1, f)
                    ? 1
                    : 0;
    EXPECT_LT(same, (3 * n) / 4);
    EXPECT_GT(same, n / 4);
}

TEST(Chaos, PerturbSleepsAndCounts)
{
    fault::ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 3;
    cfg.worker_stall_rate = 1.0; // every draw hits
    cfg.worker_stall_us = 100;
    fault::ChaosInjector inj(cfg);
    u64 slept = 0;
    for (u64 f = 0; f < 5; ++f)
        slept += inj.perturb(fault::ChaosSite::WorkerStall, 0, f);
    EXPECT_EQ(slept, 500u);
    const fault::ChaosStats st =
        inj.statsFor(fault::ChaosSite::WorkerStall);
    EXPECT_EQ(st.events, 5u);
    EXPECT_EQ(st.hits, 5u);
    EXPECT_EQ(st.slept_us, 500u);
    EXPECT_EQ(inj.totalHits(), 5u);
    EXPECT_EQ(inj.totalSleptUs(), 500u);
}

TEST(Chaos, ZeroRateSiteNeverHits)
{
    fault::ChaosConfig cfg;
    cfg.enabled = true;
    cfg.seed = 17;
    cfg.worker_stall_rate = 1.0;
    fault::ChaosInjector inj(cfg);
    for (u64 f = 0; f < 256; ++f)
        EXPECT_FALSE(
            inj.wouldHit(fault::ChaosSite::CaptureJitter, 0, f));
    EXPECT_EQ(inj.perturb(fault::ChaosSite::CaptureJitter, 0, 0), 0u);
}

TEST(Chaos, RejectsOutOfRangeRates)
{
    fault::ChaosConfig cfg;
    cfg.enabled = true;
    cfg.worker_stall_rate = 1.5;
    EXPECT_THROW(fault::ChaosInjector{cfg}, std::invalid_argument);
}

} // namespace
} // namespace rpx
