/** @file Unit tests for the synthetic dataset generators. */

#include <gtest/gtest.h>

#include "datasets/face_dataset.hpp"
#include "datasets/pose_dataset.hpp"
#include "datasets/renderer.hpp"
#include "datasets/slam_dataset.hpp"
#include "datasets/trajectory.hpp"
#include "datasets/world.hpp"

namespace rpx {
namespace {

TEST(World, GeneratesRequestedLandmarks)
{
    WorldConfig cfg;
    cfg.landmarks = 50;
    const World world(cfg);
    EXPECT_EQ(world.landmarks().size(), 50u);
    EXPECT_EQ(world.landmarkPositions().size(), 50u);
    for (const auto &lm : world.landmarks()) {
        EXPECT_FALSE(lm.texture.empty());
        EXPECT_GT(lm.size, 0.0);
        // Inside the room volume.
        EXPECT_LE(std::abs(lm.position.x), cfg.room_width / 2 + 1e-9);
        EXPECT_LE(lm.position.z, cfg.room_depth + 1e-9);
    }
}

TEST(World, DeterministicPerSeed)
{
    WorldConfig cfg;
    cfg.landmarks = 20;
    const World a(cfg), b(cfg);
    for (size_t i = 0; i < 20; ++i) {
        EXPECT_DOUBLE_EQ(a.landmarks()[i].position.x,
                         b.landmarks()[i].position.x);
        EXPECT_EQ(a.landmarks()[i].texture, b.landmarks()[i].texture);
    }
}

TEST(Trajectory, LookAtIsRigid)
{
    const Pose pose =
        lookAt(Vec3{1, 2, 3}, Vec3{0, 0, 10}, Vec3{0, 1, 0});
    // Rotation is orthonormal with determinant +1 (trace of R R^T = 3).
    const Mat3 should_be_identity = pose.rotation *
                                    pose.rotation.transposed();
    EXPECT_NEAR(should_be_identity.trace(), 3.0, 1e-12);
    // The camera center round-trips.
    const Vec3 c = pose.center();
    EXPECT_NEAR(c.x, 1.0, 1e-12);
    EXPECT_NEAR(c.y, 2.0, 1e-12);
    EXPECT_NEAR(c.z, 3.0, 1e-12);
    // The target projects onto the +z axis.
    const Vec3 target_cam = pose.transform(Vec3{0, 0, 10});
    EXPECT_NEAR(target_cam.x, 0.0, 1e-9);
    EXPECT_NEAR(target_cam.y, 0.0, 1e-9);
    EXPECT_GT(target_cam.z, 0.0);
}

TEST(Trajectory, SmoothAndCorrectLength)
{
    TrajectoryConfig cfg;
    cfg.frames = 60;
    const auto poses = generateTrajectory(cfg);
    ASSERT_EQ(poses.size(), 60u);
    // Frame-to-frame translation stays small (smooth 30 fps motion).
    for (size_t i = 1; i < poses.size(); ++i) {
        const double step =
            (poses[i].center() - poses[i - 1].center()).norm();
        EXPECT_LT(step, 0.1) << "frame " << i;
    }
}

TEST(Trajectory, ProfilesDiffer)
{
    TrajectoryConfig a, b;
    a.profile = MotionProfile::Gentle;
    b.profile = MotionProfile::Sweeping;
    const auto pa = generateTrajectory(a);
    const auto pb = generateTrajectory(b);
    double diff = 0.0;
    for (size_t i = 0; i < pa.size(); ++i)
        diff += (pa[i].center() - pb[i].center()).norm();
    EXPECT_GT(diff, 1.0);
}

TEST(Renderer, LandmarksAppearInFrame)
{
    WorldConfig wc;
    wc.landmarks = 120;
    const World world(wc);
    const CameraIntrinsics cam =
        CameraIntrinsics::forResolution(320, 240);
    const SceneRenderer renderer(world, 320, 240, cam);
    const Image frame =
        renderer.renderGray(lookAt(Vec3{0, 0, 0.5}, Vec3{0, 0, 6},
                                   Vec3{0, 1, 0}));
    // The textured landmarks push pixels outside the background band.
    int outliers = 0;
    for (const u8 v : frame.data())
        if (v < 80 || v > 140)
            ++outliers;
    EXPECT_GT(outliers, 200);
}

TEST(Renderer, GrayToRgbReplicates)
{
    Image gray(4, 4, PixelFormat::Gray8, 93);
    const Image rgb = grayToRgb(gray);
    EXPECT_EQ(rgb.channels(), 3);
    EXPECT_EQ(rgb.at(2, 2, 0), 93);
    EXPECT_EQ(rgb.at(2, 2, 1), 93);
    EXPECT_EQ(rgb.at(2, 2, 2), 93);
}

TEST(SlamSequence, FramesAndGroundTruthAligned)
{
    SlamSequenceConfig cfg;
    cfg.width = 160;
    cfg.height = 120;
    cfg.frames = 5;
    cfg.landmarks = 60;
    const SlamSequence seq(cfg);
    EXPECT_EQ(seq.groundTruth().size(), 5u);
    const Image f = seq.renderFrame(2);
    EXPECT_EQ(f.width(), 160);
    EXPECT_EQ(f.height(), 120);
    EXPECT_THROW(seq.renderFrame(5), std::runtime_error);
    EXPECT_EQ(seq.renderFrameRgb(0).channels(), 3);
}

TEST(SlamSequence, SuiteHasVariedProfiles)
{
    const auto suite = slamBenchmarkSuite(320, 240, 10, 3);
    ASSERT_EQ(suite.size(), 3u);
    EXPECT_NE(suite[0].profile, suite[1].profile);
    EXPECT_NE(suite[0].seed, suite[1].seed);
}

TEST(FaceSequence, GroundTruthBoxesInsideFrameMostly)
{
    const FaceSequence seq;
    int boxes = 0;
    for (int t = 0; t < seq.frames(); t += 5) {
        for (const auto &b : seq.groundTruth(t)) {
            ++boxes;
            const Rect clipped =
                b.clippedTo(seq.config().width, seq.config().height);
            EXPECT_GE(clipped.area(), b.area() / 2);
        }
    }
    EXPECT_GT(boxes, 5);
}

TEST(FaceSequence, FacesBrighterThanBackground)
{
    const FaceSequence seq;
    const int t = 15;
    const Image frame = seq.renderFrame(t);
    for (const auto &b : seq.groundTruth(t)) {
        const Point c = b.center();
        if (frame.inBounds(c.x, c.y)) {
            EXPECT_GT(frame.at(c.x, c.y), 150);
        }
    }
}

TEST(PoseSequence, ThirteenJointsPerPerson)
{
    const PoseSequence seq;
    const auto gt = seq.groundTruth(20);
    ASSERT_FALSE(gt.empty());
    for (const auto &person : gt) {
        EXPECT_EQ(person.joints.size(), kJointCount);
        // Head above pelvis (y grows downward).
        EXPECT_LT(person.joints[static_cast<size_t>(Joint::Head)].y,
                  person.joints[static_cast<size_t>(Joint::Pelvis)].y);
        // The bbox covers all joints.
        for (const auto &j : person.joints)
            EXPECT_TRUE(person.bbox.contains(j));
    }
}

TEST(PoseSequence, WalkersMoveRight)
{
    // Single walker so ground-truth indices stay aligned across frames.
    PoseSequenceConfig cfg;
    cfg.persons = 1;
    const PoseSequence seq(cfg);
    // Walkers enter within the first third of the sequence, so both
    // sampled frames see the walker on stage.
    const auto early = seq.groundTruth(40);
    const auto late = seq.groundTruth(60);
    ASSERT_FALSE(early.empty());
    ASSERT_FALSE(late.empty());
    EXPECT_GT(late[0].bbox.center().x, early[0].bbox.center().x);
}

TEST(PoseSequence, JointsAreBrightBlobs)
{
    const PoseSequence seq;
    const int t = 25;
    const Image frame = seq.renderFrame(t);
    int bright = 0, total = 0;
    for (const auto &person : seq.groundTruth(t)) {
        for (const auto &j : person.joints) {
            if (!frame.inBounds(j.x, j.y))
                continue;
            ++total;
            if (frame.at(j.x, j.y) > 120)
                ++bright;
        }
    }
    ASSERT_GT(total, 0);
    EXPECT_GT(bright, total * 3 / 4);
}

} // namespace
} // namespace rpx
