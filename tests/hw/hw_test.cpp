/** @file Unit tests for the FPGA resource and power models (Table 5). */

#include <gtest/gtest.h>

#include "hw/power_model.hpp"
#include "hw/resource_model.hpp"

namespace rpx {
namespace {

TEST(ResourceModel, ParallelMatchesTable5)
{
    const ResourceModel model;
    const auto r100 =
        model.encoderUsage(EncoderDesign::Parallel, 100);
    EXPECT_EQ(r100.luts, 4644u);
    EXPECT_EQ(r100.ffs, 5935u);
    EXPECT_EQ(r100.brams, 6u);
    EXPECT_TRUE(r100.synthesizable);

    const auto r200 =
        model.encoderUsage(EncoderDesign::Parallel, 200);
    EXPECT_EQ(r200.luts, 8635u);
    EXPECT_EQ(r200.ffs, 10935u);

    const auto r400 =
        model.encoderUsage(EncoderDesign::Parallel, 400);
    EXPECT_EQ(r400.luts, 16251u);
    EXPECT_EQ(r400.ffs, 20685u);
}

TEST(ResourceModel, ParallelFailsSynthesisAt1600)
{
    const ResourceModel model;
    const auto r = model.encoderUsage(EncoderDesign::Parallel, 1600);
    EXPECT_FALSE(r.synthesizable);
    EXPECT_EQ(r.toString(), "No Synth");
}

TEST(ResourceModel, HybridMatchesTable5)
{
    const ResourceModel model;
    const u32 counts[] = {100, 200, 400, 1600};
    const u64 luts[] = {942, 949, 944, 952};
    const u64 ffs[] = {1189, 1190, 1191, 1186};
    for (int i = 0; i < 4; ++i) {
        const auto r =
            model.encoderUsage(EncoderDesign::Hybrid, counts[i]);
        EXPECT_EQ(r.luts, luts[i]) << counts[i];
        EXPECT_EQ(r.ffs, ffs[i]) << counts[i];
        EXPECT_EQ(r.brams, 11u);
        EXPECT_TRUE(r.synthesizable);
    }
}

TEST(ResourceModel, HybridIsFlatParallelGrows)
{
    const ResourceModel model;
    const auto h100 = model.encoderUsage(EncoderDesign::Hybrid, 100);
    const auto h1600 = model.encoderUsage(EncoderDesign::Hybrid, 1600);
    EXPECT_LT(h1600.luts, h100.luts + 50); // flat within jitter
    const auto p100 = model.encoderUsage(EncoderDesign::Parallel, 100);
    const auto p400 = model.encoderUsage(EncoderDesign::Parallel, 400);
    EXPECT_GT(p400.luts, 3 * p100.luts); // ~linear growth
}

TEST(ResourceModel, DecoderAgnosticToRegions)
{
    const ResourceModel model;
    const auto d0 = model.decoderUsage(1920, 0);
    const auto d1600 = model.decoderUsage(1920, 1600);
    EXPECT_EQ(d0.luts, d1600.luts);
    EXPECT_EQ(d0.luts, 699u);
    EXPECT_EQ(d0.ffs, 1082u);
    EXPECT_EQ(d0.brams, 2u);
}

TEST(ResourceModel, DecoderBramScalesWithWidth)
{
    const ResourceModel model;
    EXPECT_EQ(model.decoderUsage(3840).brams, 4u);
    EXPECT_EQ(model.decoderUsage(640).brams, 2u);
}

TEST(ResourceModel, RejectsZeroRegions)
{
    const ResourceModel model;
    EXPECT_THROW(model.encoderUsage(EncoderDesign::Hybrid, 0),
                 std::invalid_argument);
}

TEST(PowerModel, EncoderAt1600RegionsIs45mW)
{
    // §6.3: "Our encoder consumes 45 mW for supporting 1600 regions,
    // which entails less than 7% of standard mobile ISP chip power".
    const PowerModel power;
    const double mw =
        power.encoderPowerMw(EncoderDesign::Hybrid, 1600);
    EXPECT_NEAR(mw, 45.0, 0.5);
    EXPECT_LT(power.encoderIspFraction(EncoderDesign::Hybrid, 1600),
              0.07);
}

TEST(PowerModel, DecoderUnderOneMilliwatt)
{
    const PowerModel power;
    EXPECT_LT(power.decoderPowerMw(), 1.0);
}

TEST(PowerModel, ParallelCostsMoreThanHybrid)
{
    const PowerModel power;
    EXPECT_GT(power.encoderPowerMw(EncoderDesign::Parallel, 400),
              power.encoderPowerMw(EncoderDesign::Hybrid, 400));
}

} // namespace
} // namespace rpx
