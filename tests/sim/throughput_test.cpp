/** @file Unit tests for the throughput simulator (§5.3.1 / Fig. 8). */

#include <gtest/gtest.h>

#include "sim/experiments.hpp"
#include "sim/throughput_sim.hpp"

namespace rpx {
namespace {

ThroughputConfig
smallConfig()
{
    ThroughputConfig cfg;
    cfg.width = 640;
    cfg.height = 480;
    cfg.fps = 30.0;
    cfg.bytes_per_pixel = 1.0; // keep closed-form expectations simple
    return cfg;
}

RegionTrace
cycleTrace(i32 w, i32 h, int frames, int cycle, std::vector<RegionLabel> tracked)
{
    RegionTrace trace;
    for (int t = 0; t < frames; ++t) {
        if (t % cycle == 0)
            trace.push_back({fullFrameRegion(w, h)});
        else
            trace.push_back(tracked);
    }
    return trace;
}

TEST(ThroughputSim, FchMatchesClosedForm)
{
    const ThroughputSimulator sim(smallConfig());
    const RegionTrace trace(10); // 10 empty frames; FCH ignores labels
    const ThroughputResult r = sim.evaluate(CaptureScheme::FCH, trace);
    // 640*480 bytes written + read per frame at 30 fps; the framebuffer
    // ring holds `history` (4) frames.
    EXPECT_NEAR(r.throughput_mbps, 2.0 * 640 * 480 * 30 / 1e6, 1e-9);
    EXPECT_NEAR(r.footprint_mb, 4.0 * 640 * 480 / 1e6, 1e-9);
    EXPECT_DOUBLE_EQ(r.kept_fraction, 1.0);
}

TEST(ThroughputSim, FclScalesQuadratically)
{
    const ThroughputSimulator sim(smallConfig());
    const RegionTrace trace(10);
    const auto fch = sim.evaluate(CaptureScheme::FCH, trace);
    const auto fcl = sim.evaluate(CaptureScheme::FCL, trace);
    EXPECT_NEAR(fcl.throughput_mbps / fch.throughput_mbps, 0.0625, 0.01);
    EXPECT_NEAR(fcl.kept_fraction, 0.0625, 1e-9);
}

TEST(ThroughputSim, RhythmicCountsEncodedPixelsPlusMetadata)
{
    const ThroughputSimulator sim(smallConfig());
    // One frame, one quarter-frame region at stride 1.
    RegionTrace trace{{RegionLabel{0, 0, 320, 240, 1, 1, 0}}};
    const auto r = sim.evaluate(CaptureScheme::RP, trace);
    const double payload = 320.0 * 240.0;
    const double metadata = 640.0 * 480.0 / 4.0 + 480.0 * 4.0;
    EXPECT_NEAR(static_cast<double>(r.traffic.bytes_written), payload,
                1e-9);
    EXPECT_NEAR(static_cast<double>(r.traffic.metadata_bytes),
                2.0 * metadata, 1e-9);
    EXPECT_NEAR(r.kept_fraction, 0.25, 1e-9);
}

TEST(ThroughputSim, HigherCycleLengthReducesTraffic)
{
    // §6.2: "memory traffic decreases by 5-10% with every 5-step increase
    // in cycle length".
    const ThroughputSimulator sim(smallConfig());
    const std::vector<RegionLabel> tracked = {
        {40, 40, 120, 120, 2, 1, 0},
        {300, 200, 100, 100, 2, 2, 0},
    };
    double prev = 1e18;
    for (int cl : {5, 10, 15}) {
        const auto trace = cycleTrace(640, 480, 60, cl, tracked);
        const auto r = sim.evaluate(CaptureScheme::RP, trace);
        EXPECT_LT(r.throughput_mbps, prev) << "CL=" << cl;
        prev = r.throughput_mbps;
    }
}

TEST(ThroughputSim, RhythmicBeatsFchOnSparseWorkloads)
{
    const ThroughputSimulator sim(smallConfig());
    const auto trace = cycleTrace(640, 480, 40, 10,
                                  {{100, 100, 150, 150, 2, 1, 0}});
    const auto rp = sim.evaluate(CaptureScheme::RP, trace);
    const auto fch = sim.evaluate(CaptureScheme::FCH, trace);
    EXPECT_LT(rp.throughput_mbps, 0.6 * fch.throughput_mbps);
    EXPECT_LT(rp.footprint_mb, 0.7 * fch.footprint_mb);
}

TEST(ThroughputSim, H264ExceedsFch)
{
    const ThroughputSimulator sim(smallConfig());
    const RegionTrace trace(20);
    const auto h264 = sim.evaluate(CaptureScheme::H264, trace);
    const auto fch = sim.evaluate(CaptureScheme::FCH, trace);
    EXPECT_GT(h264.throughput_mbps, fch.throughput_mbps);
    EXPECT_GT(h264.footprint_mb, fch.footprint_mb);
}

TEST(ThroughputSim, MultiRoiStoresDenseWindows)
{
    const ThroughputSimulator sim(smallConfig());
    // Strided sparse regions: RP stores 1/4 density, multi-ROI full.
    RegionTrace trace;
    for (int t = 0; t < 10; ++t) {
        std::vector<RegionLabel> labels;
        for (int i = 0; i < 30; ++i)
            labels.push_back({(i * 73) % 560, (i * 97) % 400, 40, 40,
                              2, 1, 0});
        trace.push_back(labels);
    }
    const auto rp = sim.evaluate(CaptureScheme::RP, trace);
    const auto roi = sim.evaluate(CaptureScheme::MultiRoi, trace);
    EXPECT_GT(static_cast<double>(roi.traffic.bytes_written),
              static_cast<double>(rp.traffic.bytes_written));
}

TEST(ThroughputSim, FootprintUsesHistoryWindow)
{
    ThroughputConfig cfg = smallConfig();
    cfg.history = 4;
    const ThroughputSimulator sim(cfg);
    const auto trace = cycleTrace(640, 480, 20, 20,
                                  {{0, 0, 64, 64, 1, 1, 0}});
    const auto r = sim.evaluate(CaptureScheme::RP, trace);
    // Peak: the full first frame plus three small ones (+metadata).
    const double full = 640.0 * 480.0;
    EXPECT_GT(r.footprint_peak_mb, full / 1e6);
    EXPECT_LT(r.footprint_peak_mb, 2.5 * full / 1e6);
}

TEST(ThroughputSim, BytesPerPixelScalesPayloadNotMetadata)
{
    ThroughputConfig one = smallConfig();
    ThroughputConfig two = smallConfig();
    two.bytes_per_pixel = 2.0;
    RegionTrace trace{{RegionLabel{0, 0, 320, 240, 1, 1, 0}}};
    const auto r1 = ThroughputSimulator(one).evaluate(CaptureScheme::RP,
                                                      trace);
    const auto r2 = ThroughputSimulator(two).evaluate(CaptureScheme::RP,
                                                      trace);
    EXPECT_EQ(r2.traffic.bytes_written, 2 * r1.traffic.bytes_written);
    EXPECT_EQ(r2.traffic.metadata_bytes, r1.traffic.metadata_bytes);
    // FCH scales fully, so the *relative* metadata overhead halves and
    // the rhythmic advantage grows with wider pixel formats.
    const auto f1 = ThroughputSimulator(one).evaluate(CaptureScheme::FCH,
                                                      trace);
    const auto f2 = ThroughputSimulator(two).evaluate(CaptureScheme::FCH,
                                                      trace);
    EXPECT_LT(r2.throughput_mbps / f2.throughput_mbps,
              r1.throughput_mbps / f1.throughput_mbps);
}

TEST(ScaleTrace, PreservesStructure)
{
    RegionTrace trace{{RegionLabel{10, 20, 100, 50, 2, 3, 0}}};
    const RegionTrace scaled = scaleTrace(trace, 640, 480, 1280, 960);
    ASSERT_EQ(scaled.size(), 1u);
    ASSERT_EQ(scaled[0].size(), 1u);
    EXPECT_EQ(scaled[0][0].x, 20);
    EXPECT_EQ(scaled[0][0].w, 200);
    EXPECT_EQ(scaled[0][0].h, 100);
    EXPECT_EQ(scaled[0][0].stride, 2); // preserved
    EXPECT_EQ(scaled[0][0].skip, 3);
}

TEST(ScaleTrace, DropsRegionsScaledOut)
{
    RegionTrace trace{{RegionLabel{630, 470, 10, 10, 1, 1, 0}}};
    const RegionTrace scaled = scaleTrace(trace, 640, 480, 64, 48);
    ASSERT_EQ(scaled.size(), 1u);
    EXPECT_LE(scaled[0].size(), 1u);
}

TEST(PaperSweep, HasSevenBars)
{
    const auto sweep = paperSchemeSweep();
    EXPECT_EQ(sweep.size(), 7u);
    EXPECT_EQ(schemeName(sweep[0].scheme), "FCH");
    EXPECT_EQ(schemeName(sweep[2].scheme, sweep[2].cycle_length), "RP5");
    EXPECT_EQ(schemeName(sweep[6].scheme), "Multi-ROI");
}

} // namespace
} // namespace rpx
