/** @file Integration tests for the three evaluation workloads. */

#include <gtest/gtest.h>

#include "sim/experiments.hpp"
#include "sim/workload.hpp"

namespace rpx {
namespace {

SlamSequenceConfig
tinySlam()
{
    SlamSequenceConfig cfg;
    cfg.width = 320;
    cfg.height = 240;
    cfg.frames = 12;
    cfg.landmarks = 150;
    cfg.motion_amplitude = 0.3;
    return cfg;
}

TEST(SlamWorkload, RhythmicTracksWithReducedTraffic)
{
    WorkloadConfig rp;
    rp.scheme = CaptureScheme::RP;
    rp.cycle_length = 5;
    const SlamRunResult rp_run = runSlamWorkload(tinySlam(), rp);

    WorkloadConfig fch;
    fch.scheme = CaptureScheme::FCH;
    const SlamRunResult fch_run = runSlamWorkload(tinySlam(), fch);

    EXPECT_EQ(rp_run.scheme_name, "RP5");
    EXPECT_EQ(rp_run.trace.size(), 12u);
    EXPECT_GT(rp_run.tracked_fraction, 0.7);

    // Traffic shrinks, error grows only moderately.
    EXPECT_LT(rp_run.pipeline_traffic.bytes_written,
              fch_run.pipeline_traffic.bytes_written);
    EXPECT_LT(rp_run.metrics.ate_mean, 0.6);
    EXPECT_LE(fch_run.metrics.ate_mean, rp_run.metrics.ate_mean + 0.05);

    // Kept fraction: full on cycle frames, partial between.
    EXPECT_DOUBLE_EQ(rp_run.kept_per_frame[0], 1.0);
    EXPECT_LT(rp_run.kept_per_frame[2], 1.0);
}

TEST(SlamWorkload, TraceFeedsThroughputSimulator)
{
    WorkloadConfig rp;
    rp.scheme = CaptureScheme::RP;
    rp.cycle_length = 5;
    const SlamRunResult run = runSlamWorkload(tinySlam(), rp);

    ThroughputConfig tc;
    tc.width = 320;
    tc.height = 240;
    const ThroughputSimulator sim(tc);
    const auto rp_result = sim.evaluate(CaptureScheme::RP, run.trace);
    const auto fch_result = sim.evaluate(CaptureScheme::FCH, run.trace);
    EXPECT_LT(rp_result.throughput_mbps, fch_result.throughput_mbps);
    EXPECT_LT(rp_result.kept_fraction, 1.0);
}

TEST(FaceWorkload, DetectsWithRegions)
{
    FaceSequenceConfig seq;
    seq.width = 400;
    seq.height = 300;
    seq.frames = 15;
    seq.subjects = 2;

    WorkloadConfig rp;
    rp.scheme = CaptureScheme::RP;
    rp.cycle_length = 5;
    const DetectionRunResult run = runFaceWorkload(seq, rp);
    EXPECT_GT(run.map_percent, 50.0);
    EXPECT_EQ(run.trace.size(), 15u);
    EXPECT_EQ(run.width, 400);
}

TEST(PoseWorkload, EstimatesWithRegions)
{
    PoseSequenceConfig seq;
    seq.width = 480;
    seq.height = 360;
    seq.frames = 15;
    seq.persons = 1;

    WorkloadConfig rp;
    rp.scheme = CaptureScheme::RP;
    rp.cycle_length = 5;
    const DetectionRunResult run = runPoseWorkload(seq, rp);
    EXPECT_GT(run.map_percent, 40.0);
    EXPECT_GT(run.recall_percent, 40.0);
}

TEST(SlamWorkload, MotionVectorPolicyTracks)
{
    WorkloadConfig wc;
    wc.scheme = CaptureScheme::RP;
    wc.cycle_length = 5;
    wc.region_policy = RegionPolicyKind::MotionVector;
    const SlamRunResult run = runSlamWorkload(tinySlam(), wc);
    EXPECT_GT(run.tracked_fraction, 0.6);
    EXPECT_LT(run.metrics.ate_mean, 0.8);
    // Between full captures some pixels are discarded.
    bool any_partial = false;
    for (double k : run.kept_per_frame)
        any_partial |= k > 0.0 && k < 1.0;
    EXPECT_TRUE(any_partial);
}

TEST(Workload, MultiRoiDropsStrideAndSkip)
{
    WorkloadConfig roi;
    roi.scheme = CaptureScheme::MultiRoi;
    roi.cycle_length = 5;
    const SlamRunResult run = runSlamWorkload(tinySlam(), roi);
    for (const auto &labels : run.trace) {
        EXPECT_LE(labels.size(), 16u);
        for (const auto &r : labels) {
            EXPECT_EQ(r.stride, 1);
            EXPECT_EQ(r.skip, 1);
        }
    }
}

TEST(Workload, FclUsesStridedFullFrame)
{
    WorkloadConfig fcl;
    fcl.scheme = CaptureScheme::FCL;
    fcl.fcl_stride = 2;
    const SlamRunResult run = runSlamWorkload(tinySlam(), fcl);
    for (const auto &labels : run.trace) {
        ASSERT_EQ(labels.size(), 1u);
        EXPECT_EQ(labels[0].stride, 2);
    }
    for (double k : run.kept_per_frame)
        EXPECT_NEAR(k, 0.25, 0.01);
}

TEST(AnalyzeTrace, Table4StyleStats)
{
    RegionTrace trace;
    trace.push_back({fullFrameRegion(320, 240)}); // full capture: excluded
    trace.push_back({
        {0, 0, 30, 40, 2, 1, 0},
        {50, 50, 60, 70, 4, 3, 0},
    });
    trace.push_back({{10, 10, 20, 20, 1, 2, 0}});
    const RegionTraceStats stats = analyzeTrace(trace, 320, 240);
    EXPECT_DOUBLE_EQ(stats.avg_regions_per_frame, 1.5);
    EXPECT_EQ(stats.min_w, 20);
    EXPECT_EQ(stats.max_w, 60);
    EXPECT_EQ(stats.min_stride, 1);
    EXPECT_EQ(stats.max_stride, 4);
    EXPECT_EQ(stats.max_skip, 3);
}

TEST(EvalScale, ReadsEnvironment)
{
    setenv("RPX_BENCH_SCALE", "medium", 1);
    const EvalScale medium = evalScaleFromEnv();
    EXPECT_EQ(medium.slam_frames, 120);
    setenv("RPX_BENCH_SCALE", "full", 1);
    const EvalScale full = evalScaleFromEnv();
    EXPECT_GT(full.slam_width, medium.slam_width);
    setenv("RPX_BENCH_SCALE", "bogus", 1);
    EXPECT_THROW(evalScaleFromEnv(), std::invalid_argument);
    unsetenv("RPX_BENCH_SCALE");
    EXPECT_EQ(evalScaleFromEnv().slam_frames, 60);
}

TEST(SchemeNames, Printable)
{
    EXPECT_EQ(schemeName(CaptureScheme::FCH), "FCH");
    EXPECT_EQ(schemeName(CaptureScheme::RP), "RP");
    EXPECT_EQ(schemeName(CaptureScheme::RP, 15), "RP15");
    EXPECT_EQ(schemeName(CaptureScheme::H264), "H.264");
    EXPECT_EQ(schemeName(CaptureScheme::MultiRoi), "Multi-ROI");
}

TEST(TextTable, RendersAligned)
{
    TextTable table({"a", "bb"});
    table.addRow({"1", "2"});
    const std::string s = table.render();
    EXPECT_NE(s.find("a"), std::string::npos);
    EXPECT_NE(s.find("--"), std::string::npos);
    EXPECT_NE(s.find("1"), std::string::npos);
    EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
}

} // namespace
} // namespace rpx
