/** @file Unit tests for the §7 future-direction studies. */

#include <gtest/gtest.h>

#include "policy/adaptive_cycle.hpp"
#include "sim/extensions.hpp"

namespace rpx {
namespace {

RegionTrace
smallTrace(i32 w, i32 h, int frames, int cycle)
{
    RegionTrace trace;
    for (int t = 0; t < frames; ++t) {
        if (t % cycle == 0)
            trace.push_back({fullFrameRegion(w, h)});
        else
            trace.push_back({RegionLabel{10, 10, 60, 60, 2, 1, 0}});
    }
    return trace;
}

TEST(Dramless, TinyBudgetFitsNothing)
{
    const auto trace = smallTrace(640, 480, 20, 10);
    DramlessConfig cfg;
    cfg.sram_budget = 1024; // 1 KB
    const DramlessResult r = analyzeDramless(trace, 640, 480, cfg);
    EXPECT_EQ(r.frames_fitting, 0u);
    EXPECT_DOUBLE_EQ(r.avoidedFraction(), 0.0);
    EXPECT_EQ(r.dram_bytes_baseline, r.dram_bytes_dramless);
}

TEST(Dramless, HugeBudgetFitsAllTrackedFrames)
{
    const auto trace = smallTrace(640, 480, 20, 10);
    DramlessConfig cfg;
    cfg.sram_budget = 64ULL * 1024 * 1024;
    const DramlessResult r = analyzeDramless(trace, 640, 480, cfg);
    // Full captures (frames 0 and 10) always go to DRAM; the 18 tracked
    // frames fit.
    EXPECT_EQ(r.frames_fitting, 18u);
    EXPECT_GT(r.avoidedFraction(), 0.0);
    EXPECT_LT(r.avoidedFraction(), 1.0);
}

TEST(Dramless, IntermediateBudgetFitsTrackedWindows)
{
    // Tracked frames are small; windows containing the full capture are
    // not. With CL=10 and a 4-frame window, 6 of every 10 frames fit a
    // budget sized between one tracked window and one full frame.
    const auto trace = smallTrace(640, 480, 40, 10);
    DramlessConfig cfg;
    cfg.bytes_per_pixel = 1.0;
    // Tracked window: 4 * (900 px + ~79 KB metadata) ~ 330 KB.
    cfg.sram_budget = 400 * 1024;
    const DramlessResult r = analyzeDramless(trace, 640, 480, cfg);
    EXPECT_GT(r.frames_fitting, 0u);
    EXPECT_LT(r.frames_fitting, r.frames);
    EXPECT_GT(r.avoidedFraction(), 0.0);
    EXPECT_LT(r.avoidedFraction(), 1.0);
}

TEST(Placement, InSensorReducesCsiTraffic)
{
    const auto trace = smallTrace(640, 480, 20, 10);
    const EnergyModel energy;
    const PlacementResult isp = analyzePlacement(
        trace, 640, 480, 30.0, EncoderPlacement::AtIspOutput, energy);
    const PlacementResult sensor = analyzePlacement(
        trace, 640, 480, 30.0, EncoderPlacement::InSensor, energy);
    EXPECT_DOUBLE_EQ(isp.csi_pixels_per_frame, 640.0 * 480.0);
    EXPECT_LT(sensor.csi_pixels_per_frame,
              0.5 * isp.csi_pixels_per_frame);
    EXPECT_LT(sensor.csi_power_w, isp.csi_power_w);
    EXPECT_GT(sensor.csi_power_w, 0.0);
}

TEST(AdaptiveCycle, HighMotionShrinksCycle)
{
    AdaptiveCyclePolicy policy(640, 480);
    EXPECT_EQ(policy.currentCycle(), policy.config().max_cycle);
    for (int i = 0; i < 30; ++i)
        policy.observeMotion(10.0);
    EXPECT_EQ(policy.currentCycle(), policy.config().min_cycle);
    for (int i = 0; i < 60; ++i)
        policy.observeMotion(0.2);
    EXPECT_EQ(policy.currentCycle(), policy.config().max_cycle);
}

TEST(AdaptiveCycle, SmoothingResistsSpikes)
{
    AdaptiveCyclePolicy policy(640, 480);
    for (int i = 0; i < 30; ++i)
        policy.observeMotion(0.2); // settle at max cycle
    policy.observeMotion(8.0);     // one fast frame
    // The EWMA absorbs a single spike instead of slamming to min_cycle.
    EXPECT_GT(policy.currentCycle(), policy.config().min_cycle);
}

TEST(AdaptiveCycle, SchedulesFullCaptures)
{
    AdaptiveCycleConfig cfg;
    cfg.min_cycle = 2;
    cfg.max_cycle = 4;
    AdaptiveCyclePolicy policy(100, 100, cfg);
    policy.setTrackedRegions({{10, 10, 20, 20, 1, 1, 0}});
    for (int i = 0; i < 10; ++i)
        policy.observeMotion(0.0); // calm: cycle = 4

    int fulls = 0;
    for (int t = 0; t < 12; ++t) {
        const auto labels = policy.nextFrame();
        if (labels.size() == 1 && labels[0].w == 100)
            ++fulls;
    }
    EXPECT_EQ(fulls, 3); // frames 0, 4, 8
}

TEST(AdaptiveCycle, FullFrameUntilProposalsExist)
{
    AdaptiveCyclePolicy policy(64, 64);
    const auto first = policy.nextFrame();
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0], fullFrameRegion(64, 64));
    const auto second = policy.nextFrame(); // still no proposals
    EXPECT_EQ(second[0], fullFrameRegion(64, 64));
}

TEST(AdaptiveCycle, RejectsBadConfig)
{
    AdaptiveCycleConfig cfg;
    cfg.min_cycle = 10;
    cfg.max_cycle = 5;
    EXPECT_THROW(AdaptiveCyclePolicy(64, 64, cfg),
                 std::invalid_argument);
    AdaptiveCycleConfig cfg2;
    cfg2.smoothing = 0.0;
    EXPECT_THROW(AdaptiveCyclePolicy(64, 64, cfg2),
                 std::invalid_argument);
}

} // namespace
} // namespace rpx
