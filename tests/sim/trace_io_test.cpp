/** @file Unit tests for region-trace serialisation. */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/trace_io.hpp"

namespace rpx {
namespace {

TraceFile
sampleTrace()
{
    TraceFile file;
    file.width = 640;
    file.height = 480;
    file.trace.push_back({fullFrameRegion(640, 480)});
    file.trace.push_back({
        {10, 20, 30, 40, 2, 3, 1},
        {50, 60, 70, 80, 1, 1, 0},
    });
    file.trace.push_back({}); // a frame with no regions
    file.trace.push_back({{5, 5, 5, 5, 4, 2, 0}});
    return file;
}

TEST(TraceIo, RoundTrip)
{
    const TraceFile original = sampleTrace();
    std::stringstream ss;
    writeTrace(ss, original);
    const TraceFile back = readTrace(ss);
    EXPECT_EQ(back.width, original.width);
    EXPECT_EQ(back.height, original.height);
    ASSERT_EQ(back.trace.size(), original.trace.size());
    for (size_t t = 0; t < original.trace.size(); ++t)
        EXPECT_EQ(back.trace[t], original.trace[t]) << "frame " << t;
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/rpx_trace_io_test.csv";
    writeTraceFile(path, sampleTrace());
    const TraceFile back = readTraceFile(path);
    EXPECT_EQ(back.trace.size(), 4u);
    EXPECT_EQ(back.trace[1].size(), 2u);
    EXPECT_TRUE(back.trace[2].empty());
}

TEST(TraceIo, RejectsBadHeader)
{
    std::stringstream ss("bogus\nframe,x,y,w,h,stride,skip,phase\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
    std::stringstream empty;
    EXPECT_THROW(readTrace(empty), std::runtime_error);
}

TEST(TraceIo, RejectsBadColumns)
{
    std::stringstream ss("# rpx-trace v1 width=10 height=10\nwrong\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsNonNumericField)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "0,1,2,three,4,1,1,0\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfOrderFrames)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "2,1,2,3,4,1,1,0\n"
        "0,1,2,3,4,1,1,0\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMissingFrameIndex)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        ",1,2,3,4,1,1,0\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
    std::stringstream neg(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "-3,1,2,3,4,1,1,0\n");
    EXPECT_THROW(readTrace(neg), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/dir/trace.csv"),
                 std::runtime_error);
    EXPECT_THROW(writeTraceFile("/nonexistent/dir/trace.csv",
                                sampleTrace()),
                 std::runtime_error);
}

TEST(TraceIo, CommentsAndBlanksIgnored)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "# a comment\n"
        "\n"
        "0,1,2,3,4,1,1,0\n");
    const TraceFile back = readTrace(ss);
    ASSERT_EQ(back.trace.size(), 1u);
    EXPECT_EQ(back.trace[0].size(), 1u);
}

} // namespace
} // namespace rpx
