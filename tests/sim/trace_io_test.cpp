/** @file Unit tests for region-trace serialisation. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/trace_io.hpp"

namespace rpx {
namespace {

TraceFile
sampleTrace()
{
    TraceFile file;
    file.width = 640;
    file.height = 480;
    file.trace.push_back({fullFrameRegion(640, 480)});
    file.trace.push_back({
        {10, 20, 30, 40, 2, 3, 1},
        {50, 60, 70, 80, 1, 1, 0},
    });
    file.trace.push_back({}); // a frame with no regions
    file.trace.push_back({{5, 5, 5, 5, 4, 2, 0}});
    return file;
}

TEST(TraceIo, RoundTrip)
{
    const TraceFile original = sampleTrace();
    std::stringstream ss;
    writeTrace(ss, original);
    const TraceFile back = readTrace(ss);
    EXPECT_EQ(back.width, original.width);
    EXPECT_EQ(back.height, original.height);
    ASSERT_EQ(back.trace.size(), original.trace.size());
    for (size_t t = 0; t < original.trace.size(); ++t)
        EXPECT_EQ(back.trace[t], original.trace[t]) << "frame " << t;
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = "/tmp/rpx_trace_io_test.csv";
    writeTraceFile(path, sampleTrace());
    const TraceFile back = readTraceFile(path);
    EXPECT_EQ(back.trace.size(), 4u);
    EXPECT_EQ(back.trace[1].size(), 2u);
    EXPECT_TRUE(back.trace[2].empty());
}

TEST(TraceIo, RejectsBadHeader)
{
    std::stringstream ss("bogus\nframe,x,y,w,h,stride,skip,phase\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
    std::stringstream empty;
    EXPECT_THROW(readTrace(empty), std::runtime_error);
}

TEST(TraceIo, RejectsBadColumns)
{
    std::stringstream ss("# rpx-trace v1 width=10 height=10\nwrong\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsNonNumericField)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "0,1,2,three,4,1,1,0\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsOutOfOrderFrames)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "2,1,2,3,4,1,1,0\n"
        "0,1,2,3,4,1,1,0\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMissingFrameIndex)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        ",1,2,3,4,1,1,0\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
    std::stringstream neg(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "-3,1,2,3,4,1,1,0\n");
    EXPECT_THROW(readTrace(neg), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/dir/trace.csv"),
                 std::runtime_error);
    EXPECT_THROW(writeTraceFile("/nonexistent/dir/trace.csv",
                                sampleTrace()),
                 std::runtime_error);
}

TEST(TraceIo, CommentsAndBlanksIgnored)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "# a comment\n"
        "\n"
        "0,1,2,3,4,1,1,0\n");
    const TraceFile back = readTrace(ss);
    ASSERT_EQ(back.trace.size(), 1u);
    EXPECT_EQ(back.trace[0].size(), 1u);
}

TEST(TraceIo, ToleratesCrlfLineEndings)
{
    // A trace that crossed a Windows checkout or an HTTP transfer: every
    // line ends in \r\n, plus trailing blank lines. Must parse exactly
    // like the LF original.
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\r\n"
        "frame,x,y,w,h,stride,skip,phase\r\n"
        "0,1,2,3,4,1,1,0\r\n"
        "1,,,,,,,\r\n"
        "2,5,5,4,4,2,1,0\r\n"
        "\r\n"
        "\r\n");
    const TraceFile back = readTrace(ss);
    EXPECT_EQ(back.width, 10);
    ASSERT_EQ(back.trace.size(), 3u);
    EXPECT_EQ(back.trace[0].size(), 1u);
    EXPECT_TRUE(back.trace[1].empty());
    ASSERT_EQ(back.trace[2].size(), 1u);
    EXPECT_EQ(back.trace[2][0].x, 5);
}

TEST(TraceIo, ToleratesRestatedCurrentFrameIndex)
{
    // Regions of one frame may span rows, and a region-free marker may
    // precede late-appended regions of the same frame: both restate the
    // current frame index and both are benign.
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "0,1,2,3,4,1,1,0\n"
        "0,5,5,4,4,2,1,0\n"
        "1,,,,,,,\n"
        "1,2,2,2,2,1,1,0\n");
    const TraceFile back = readTrace(ss);
    ASSERT_EQ(back.trace.size(), 2u);
    EXPECT_EQ(back.trace[0].size(), 2u);
    EXPECT_EQ(back.trace[1].size(), 1u);
}

TEST(TraceIo, RejectsPartiallyEmptyRegionRow)
{
    // A mid-row empty cell used to be silently treated as a region-free
    // frame marker, dropping the region. It must be a hard, line-numbered
    // error instead.
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "0,1,,3,4,1,1,0\n");
    try {
        readTrace(ss);
        FAIL() << "partially-empty row must throw";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
            << e.what();
    }
}

TEST(TraceIo, RejectsWrongFieldCount)
{
    std::stringstream few(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "0,1,2,3\n");
    EXPECT_THROW(readTrace(few), std::runtime_error);
    std::stringstream many(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "0,1,2,3,4,1,1,0,9\n");
    EXPECT_THROW(readTrace(many), std::runtime_error);
}

TEST(TraceIo, RejectsTrailingJunkInField)
{
    std::stringstream ss(
        "# rpx-trace v1 width=10 height=10\n"
        "frame,x,y,w,h,stride,skip,phase\n"
        "0,1,2,3x,4,1,1,0\n");
    EXPECT_THROW(readTrace(ss), std::runtime_error);
}

TEST(TraceIo, WriteReadRoundTripFuzz)
{
    // Randomized write->read round trips: arbitrary frame counts, region
    // counts (including none), and label values must survive exactly.
    Rng rng(0xC0FFEE);
    for (int iter = 0; iter < 200; ++iter) {
        TraceFile file;
        file.width = static_cast<i32>(rng.uniformInt(1, 4096));
        file.height = static_cast<i32>(rng.uniformInt(1, 4096));
        const int frames = static_cast<int>(rng.uniformInt(0, 12));
        for (int t = 0; t < frames; ++t) {
            std::vector<RegionLabel> regions;
            const int n = static_cast<int>(rng.uniformInt(0, 5));
            for (int i = 0; i < n; ++i) {
                RegionLabel r;
                r.x = static_cast<i32>(rng.uniformInt(0, 4096));
                r.y = static_cast<i32>(rng.uniformInt(0, 4096));
                r.w = static_cast<i32>(rng.uniformInt(1, 4096));
                r.h = static_cast<i32>(rng.uniformInt(1, 4096));
                r.stride = static_cast<i32>(rng.uniformInt(1, 8));
                r.skip = static_cast<i32>(rng.uniformInt(0, 8));
                r.phase = static_cast<i32>(rng.uniformInt(0, 7));
                regions.push_back(r);
            }
            file.trace.push_back(std::move(regions));
        }
        std::stringstream ss;
        writeTrace(ss, file);
        // Half the iterations go through a CRLF rewrite first.
        std::string text = ss.str();
        if (iter % 2 == 1) {
            std::string crlf;
            for (char c : text) {
                if (c == '\n')
                    crlf += '\r';
                crlf += c;
            }
            text = crlf;
        }
        std::stringstream in(text);
        const TraceFile back = readTrace(in);
        EXPECT_EQ(back.width, file.width);
        EXPECT_EQ(back.height, file.height);
        ASSERT_EQ(back.trace.size(), file.trace.size()) << "iter " << iter;
        for (size_t t = 0; t < file.trace.size(); ++t)
            EXPECT_EQ(back.trace[t], file.trace[t])
                << "iter " << iter << " frame " << t;
    }
}

} // namespace
} // namespace rpx
