/** @file Integration tests for the end-to-end vision pipeline. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "frame/draw.hpp"
#include "frame/metrics.hpp"
#include "sim/pipeline.hpp"
#include "sim/report.hpp"

namespace rpx {
namespace {

Image
testScene(i32 w, i32 h, u64 seed)
{
    Image scene(w, h);
    Rng rng(seed);
    fillValueNoise(scene, rng, 30.0, 60, 180);
    return scene;
}

PipelineConfig
smallPipeline()
{
    PipelineConfig pc;
    pc.width = 96;
    pc.height = 64;
    return pc;
}

TEST(Pipeline, FullFrameDefaultIsLossless)
{
    VisionPipeline pipeline(smallPipeline());
    const Image scene = testScene(96, 64, 1);
    const auto result = pipeline.processFrame(scene);
    EXPECT_DOUBLE_EQ(result.kept_fraction, 1.0);
    EXPECT_EQ(result.decoded, scene);
}

TEST(Pipeline, RegionsReduceTrafficAndPreserveRegions)
{
    VisionPipeline pipeline(smallPipeline());
    pipeline.runtime().setRegionLabels({{10, 10, 40, 30, 1, 1, 0}});
    const Image scene = testScene(96, 64, 2);
    const auto result = pipeline.processFrame(scene);
    EXPECT_NEAR(result.kept_fraction, 40.0 * 30 / (96.0 * 64), 1e-9);
    // Region content exact; outside black.
    EXPECT_DOUBLE_EQ(mseInRect(scene, result.decoded,
                               Rect{10, 10, 40, 30}),
                     0.0);
    EXPECT_EQ(result.decoded.at(0, 0), 0);
    EXPECT_LT(result.traffic.bytes_written, 96u * 64u / 2u);
}

TEST(Pipeline, TemporalSkipServedFromHistory)
{
    VisionPipeline pipeline(smallPipeline());
    pipeline.runtime().setRegionLabels({{0, 0, 96, 64, 1, 2, 0}});
    const Image scene = testScene(96, 64, 3);
    const auto f0 = pipeline.processFrame(scene);
    const auto f1 = pipeline.processFrame(scene);
    EXPECT_DOUBLE_EQ(f0.kept_fraction, 1.0);
    EXPECT_DOUBLE_EQ(f1.kept_fraction, 0.0);
    // Skipped frame still decodes to the (static) scene.
    EXPECT_EQ(f1.decoded, scene);
}

TEST(Pipeline, TrafficSummaryAccumulates)
{
    VisionPipeline pipeline(smallPipeline());
    const Image scene = testScene(96, 64, 4);
    pipeline.processFrame(scene);
    pipeline.processFrame(scene);
    EXPECT_EQ(pipeline.traffic().frames, 2u);
    EXPECT_EQ(pipeline.traffic().bytes_written, 2u * 96u * 64u);
    EXPECT_EQ(pipeline.frameIndex(), 2);
}

TEST(Pipeline, SensorPathProducesSimilarFrame)
{
    PipelineConfig pc = smallPipeline();
    pc.use_sensor_path = true;
    VisionPipeline pipeline(pc);
    const Image scene_gray = testScene(96, 64, 5);

    // RGB scene through Bayer mosaic + demosaic + gamma.
    Image scene_rgb(96, 64, PixelFormat::Rgb8);
    for (i32 y = 0; y < 64; ++y)
        for (i32 x = 0; x < 96; ++x)
            for (int c = 0; c < 3; ++c)
                scene_rgb.set(x, y, c, scene_gray.at(x, y));

    const auto result = pipeline.processFrame(scene_rgb);
    EXPECT_EQ(result.decoded.width(), 96);
    // Gamma brightens; structure is preserved (monotone map), so the
    // decoded frame correlates strongly with the scene.
    EXPECT_GT(ssimGlobal(result.decoded, scene_gray), 0.35);
    EXPECT_THROW(pipeline.processFrame(scene_gray),
                 std::invalid_argument);
}

TEST(Pipeline, DecoderRequestsWorkAgainstPipelineState)
{
    VisionPipeline pipeline(smallPipeline());
    const Image scene = testScene(96, 64, 6);
    pipeline.processFrame(scene);
    auto &decoder = pipeline.decoder();
    const auto row = decoder.requestPixels(0, 10, 96);
    for (i32 x = 0; x < 96; ++x)
        EXPECT_EQ(row[static_cast<size_t>(x)], scene.at(x, 10));
}

TEST(Pipeline, EncoderCycleBudgetHolds)
{
    VisionPipeline pipeline(smallPipeline());
    std::vector<RegionLabel> labels;
    for (int i = 0; i < 64; ++i)
        labels.push_back({(i * 13) % 80, (i * 29) % 48, 12, 12, 1, 1, 0});
    pipeline.runtime().setRegionLabels(labels);
    const Image scene = testScene(96, 64, 7);
    for (int t = 0; t < 3; ++t)
        pipeline.processFrame(scene);
    EXPECT_TRUE(pipeline.encoder().withinCycleBudget());
}

TEST(Pipeline, ReportContainsAllSections)
{
    VisionPipeline pipeline(smallPipeline());
    const Image scene = testScene(96, 64, 11);
    pipeline.processFrame(scene);
    pipeline.decoder().requestPixels(0, 0, 16);
    const std::string report = pipelineReport(pipeline);
    for (const char *key :
         {"frames.processed", "encoder.kept_fraction",
          "decoder.avg_latency_ns", "dram.bytes_written",
          "traffic.throughput_mbps", "csi.pixels_transferred",
          "energy.total_mj"}) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }
}

TEST(Pipeline, ThreadedEncoderMatchesSerialPipeline)
{
    // encoder_threads is a pure performance knob: every frame result and
    // every encoder stat must match the serial pipeline exactly.
    PipelineConfig serial_cfg = smallPipeline();
    PipelineConfig threaded_cfg = smallPipeline();
    threaded_cfg.encoder_threads = 3;
    VisionPipeline serial(serial_cfg);
    VisionPipeline threaded(threaded_cfg);
    EXPECT_GE(threaded.parallelEncoder().threadCount(), 3);

    const std::vector<RegionLabel> labels = {
        {4, 2, 30, 20, 2, 1, 0},
        {50, 10, 40, 40, 1, 2, 0},
        {10, 40, 60, 20, 3, 1, 0},
    };
    serial.runtime().setRegionLabels(labels);
    threaded.runtime().setRegionLabels(labels);

    for (int t = 0; t < 4; ++t) {
        const Image scene = testScene(96, 64, 20u + static_cast<u64>(t));
        const auto a = serial.processFrame(scene);
        const auto b = threaded.processFrame(scene);
        EXPECT_EQ(b.decoded, a.decoded) << "t=" << t;
        EXPECT_DOUBLE_EQ(b.kept_fraction, a.kept_fraction);
        EXPECT_EQ(b.traffic.bytes_written, a.traffic.bytes_written);
    }
    EXPECT_EQ(threaded.encoder().stats().compare_cycles,
              serial.encoder().stats().compare_cycles);
    EXPECT_EQ(threaded.encoder().stats().stream_cycles,
              serial.encoder().stats().stream_cycles);
}

TEST(Pipeline, FootprintBoundedByHistory)
{
    VisionPipeline pipeline(smallPipeline());
    const Image scene = testScene(96, 64, 8);
    Bytes footprint = 0;
    for (int t = 0; t < 8; ++t)
        footprint = pipeline.processFrame(scene).traffic.footprint;
    // 4 retained full frames + metadata.
    const Bytes frame = 96u * 64u;
    EXPECT_GE(footprint, 4 * frame);
    EXPECT_LE(footprint, 4 * frame + 4 * (frame / 4 + 64 * 4 + 4096));
}

} // namespace
} // namespace rpx
