/**
 * @file
 * End-to-end resilience tests: fault injection through the full pipeline,
 * quarantine + hold-last-good on corrupt metadata, transient DMA retry,
 * and the deadline-miss degradation ladder.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "frame/draw.hpp"
#include "sim/pipeline.hpp"

namespace rpx {
namespace {

Image
testScene(i32 w, i32 h, u64 seed)
{
    Image scene(w, h);
    Rng rng(seed);
    fillValueNoise(scene, rng, 30.0, 60, 180);
    return scene;
}

PipelineConfig
smallPipeline()
{
    PipelineConfig pc;
    pc.width = 96;
    pc.height = 64;
    return pc;
}

TEST(PipelineFault, ResilienceMachineryOffByDefault)
{
    VisionPipeline pipeline(smallPipeline());
    EXPECT_EQ(pipeline.faultInjector(), nullptr);
    EXPECT_EQ(pipeline.degradation(), nullptr);
    EXPECT_FALSE(pipeline.frameStore().metadataCrcEnabled());

    const auto r = pipeline.processFrame(testScene(96, 64, 1));
    EXPECT_FALSE(r.deadline_missed);
    EXPECT_FALSE(r.quarantined);
    EXPECT_FALSE(r.held_last_good);
    EXPECT_EQ(r.degradation_level, 0);
    EXPECT_EQ(r.transient_faults, 0u);
}

TEST(PipelineFault, GracefulPathWithoutFaultsIsByteIdentical)
{
    // CRC + graceful decode enabled but no injector: every decoded frame
    // must match the plain pipeline bit for bit.
    VisionPipeline plain(smallPipeline());
    PipelineConfig rc = smallPipeline();
    rc.fault.crc_metadata = true;
    rc.fault.graceful = true;
    VisionPipeline resilient(rc);

    plain.runtime().setRegionLabels({{8, 8, 60, 40, 2, 2, 0}});
    resilient.runtime().setRegionLabels({{8, 8, 60, 40, 2, 2, 0}});

    for (int t = 0; t < 6; ++t) {
        const Image scene = testScene(96, 64, 10 + static_cast<u64>(t));
        const auto a = plain.processFrame(scene);
        const auto b = resilient.processFrame(scene);
        EXPECT_EQ(a.decoded, b.decoded) << "frame " << t;
        EXPECT_DOUBLE_EQ(a.kept_fraction, b.kept_fraction);
        EXPECT_FALSE(b.quarantined);
        EXPECT_FALSE(b.held_last_good);
        EXPECT_EQ(b.degradation_level, 0);
    }
}

TEST(PipelineFault, MetadataCorruptionQuarantinesAndHoldsLastGood)
{
    PipelineConfig pc = smallPipeline();
    fault::FaultPlan plan;
    plan.seed = 42;
    // ~1800 metadata bytes/frame at 96x64: this rate corrupts roughly a
    // third of the frames, leaving clean frames in between to hold.
    plan.at(fault::Stage::FrameMeta).byte_error_rate = 2e-4;
    pc.fault.plan = &plan;
    pc.fault.crc_metadata = true;
    pc.fault.graceful = true;
    VisionPipeline pipeline(pc);
    pipeline.runtime().setRegionLabels({{0, 0, 96, 64, 1, 1, 0}});

    int quarantined = 0, clean = 0;
    Image last_clean;
    for (int t = 0; t < 40; ++t) {
        const Image scene = testScene(96, 64, 100 + static_cast<u64>(t));
        PipelineFrameResult r;
        ASSERT_NO_THROW(r = pipeline.processFrame(scene)) << "frame " << t;
        ASSERT_EQ(r.decoded.width(), 96);
        ASSERT_EQ(r.decoded.height(), 64);
        if (r.quarantined) {
            ++quarantined;
            EXPECT_TRUE(r.held_last_good);
            // Hold-last-good must serve the previous good image (black
            // only before the first good frame exists).
            if (!last_clean.empty()) {
                EXPECT_EQ(r.decoded, last_clean) << "frame " << t;
            }
        } else {
            ++clean;
            last_clean = r.decoded;
        }
    }
    EXPECT_GT(quarantined, 0);
    EXPECT_GT(clean, 0);
    const auto *deg = pipeline.degradation();
    ASSERT_NE(deg, nullptr);
    EXPECT_EQ(deg->stats().quarantines, static_cast<u64>(quarantined));
    EXPECT_GT(pipeline.frameStore().lifetimeReport().meta_bytes_corrupted,
              0u);
}

TEST(PipelineFault, TransientDmaFaultsAreRetriedNotFatal)
{
    PipelineConfig pc = smallPipeline();
    fault::FaultPlan plan;
    plan.seed = 7;
    plan.at(fault::Stage::Dma).drop_rate = 0.3; // transient burst failures
    pc.fault.plan = &plan;
    pc.fault.graceful = true;
    VisionPipeline pipeline(pc);

    u64 transients = 0;
    for (int t = 0; t < 10; ++t) {
        PipelineFrameResult r;
        ASSERT_NO_THROW(
            r = pipeline.processFrame(
                testScene(96, 64, 200 + static_cast<u64>(t))));
        transients += r.transient_faults;
        EXPECT_EQ(r.decoded.width(), 96);
    }
    EXPECT_GT(transients, 0u);
    // At 0.3 the retry budget (3) recovers nearly every burst.
    const FrameStoreReport &life = pipeline.frameStore().lifetimeReport();
    EXPECT_GT(life.dma_retries, 0u);
    EXPECT_EQ(pipeline.degradation()->level(), 0); // transients never escalate
}

TEST(PipelineFault, DeadlineMissesClimbLadderAndShedWork)
{
    PipelineConfig pc = smallPipeline();
    fault::FaultPlan plan;
    plan.seed = 11;
    plan.at(fault::Stage::Deadline).drop_rate = 1.0; // miss every frame
    pc.fault.plan = &plan;
    pc.fault.graceful = true;
    pc.fault.degradation.escalate_after_misses = 2;
    pc.fault.degradation.max_level = 3;
    VisionPipeline pipeline(pc);
    pipeline.runtime().setRegionLabels(
        {{0, 0, 48, 32, 1, 1, 0}, {48, 0, 48, 32, 1, 1, 0},
         {0, 32, 48, 32, 1, 1, 0}, {48, 32, 48, 32, 1, 1, 0}});

    const Image scene = testScene(96, 64, 300);
    double kept_at_full = -1.0, kept_at_max = -1.0;
    int max_level = 0;
    for (int t = 0; t < 12; ++t) {
        const auto r = pipeline.processFrame(scene);
        EXPECT_TRUE(r.deadline_missed);
        if (t == 0)
            kept_at_full = r.kept_fraction;
        max_level = std::max(max_level, r.degradation_level);
        if (r.degradation_level == 3)
            kept_at_max = r.kept_fraction;
    }
    EXPECT_EQ(max_level, 3);
    ASSERT_GE(kept_at_max, 0.0);
    // Ladder sheds regions + coarsens skips: far fewer pixels kept.
    EXPECT_LT(kept_at_max, kept_at_full * 0.5);
    EXPECT_GE(pipeline.degradation()->stats().escalations, 3u);
}

TEST(PipelineFault, LadderClimbsStepwiseWhileMissesContinue)
{
    PipelineConfig pc = smallPipeline();
    pc.fault.graceful = true;
    fault::FaultPlan plan;
    plan.seed = 13;
    plan.at(fault::Stage::Deadline).drop_rate = 1.0;
    pc.fault.plan = &plan;
    VisionPipeline pipeline(pc);

    // Every frame misses; escalate_after_misses=2 steps the level once
    // per two frames until max_level pins it. (In-pipeline recovery needs
    // the faults to stop; the recovery transition itself is covered in
    // degradation_test where health is driven directly.)
    const Image scene = testScene(96, 64, 400);
    for (int t = 0; t < 4; ++t)
        pipeline.processFrame(scene);
    EXPECT_EQ(pipeline.degradation()->level(), 2);
    for (int t = 0; t < 2; ++t)
        pipeline.processFrame(scene);
    EXPECT_EQ(pipeline.degradation()->level(), 3);
    for (int t = 0; t < 4; ++t)
        pipeline.processFrame(scene);
    EXPECT_EQ(pipeline.degradation()->level(), 3); // pinned at max
}

TEST(PipelineFault, CsiLineDropsReportedAndContained)
{
    PipelineConfig pc = smallPipeline();
    fault::FaultPlan plan;
    plan.seed = 21;
    plan.at(fault::Stage::Csi2).drop_rate = 0.05;
    plan.at(fault::Stage::Csi2).byte_error_rate = 1e-4;
    pc.fault.plan = &plan;
    pc.fault.graceful = true;
    VisionPipeline pipeline(pc);

    u32 dropped = 0;
    for (int t = 0; t < 10; ++t) {
        PipelineFrameResult r;
        ASSERT_NO_THROW(
            r = pipeline.processFrame(
                testScene(96, 64, 500 + static_cast<u64>(t))));
        dropped += r.csi_dropped_lines;
        EXPECT_FALSE(r.quarantined); // sensor noise is not metadata damage
    }
    EXPECT_GT(dropped, 0u);
    EXPECT_GT(pipeline.csi().errorFrames(), 0u);
    EXPECT_EQ(pipeline.csi().framesTransferred(), 10u);
}

TEST(PipelineFault, InjectionDisabledLeavesCsiCountersClean)
{
    VisionPipeline pipeline(smallPipeline());
    for (int t = 0; t < 3; ++t)
        pipeline.processFrame(testScene(96, 64, 600));
    EXPECT_EQ(pipeline.csi().errorFrames(), 0u);
    EXPECT_EQ(pipeline.csi().framesTransferred(), 3u);
}

} // namespace
} // namespace rpx
