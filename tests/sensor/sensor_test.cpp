/** @file Unit tests for the sensor model and CSI-2 link. */

#include <gtest/gtest.h>

#include "sensor/csi2.hpp"
#include "sensor/sensor.hpp"

namespace rpx {
namespace {

TEST(Sensor, PresetsMatchPaperResolutions)
{
    EXPECT_EQ(sensorPreset4K().width, 3840);
    EXPECT_EQ(sensorPreset4K().height, 2160);
    EXPECT_DOUBLE_EQ(sensorPreset4K().fps, 60.0);
    EXPECT_EQ(sensorPreset720p().width, 1280);
    EXPECT_EQ(sensorPresetSvga().width, 800);
    EXPECT_EQ(sensorPreset480p().height, 480);
}

TEST(Sensor, BayerMosaicRggbLayout)
{
    SensorConfig cfg = sensorPreset480p();
    cfg.width = 4;
    cfg.height = 4;
    SensorModel sensor(cfg);

    Image scene(4, 4, PixelFormat::Rgb8);
    for (i32 y = 0; y < 4; ++y) {
        for (i32 x = 0; x < 4; ++x) {
            scene.set(x, y, 0, 100); // R
            scene.set(x, y, 1, 150); // G
            scene.set(x, y, 2, 200); // B
        }
    }
    const Image raw = sensor.capture(scene);
    ASSERT_EQ(raw.format(), PixelFormat::BayerRggb);
    EXPECT_EQ(raw.at(0, 0), 100); // R site
    EXPECT_EQ(raw.at(1, 0), 150); // G site
    EXPECT_EQ(raw.at(0, 1), 150); // G site
    EXPECT_EQ(raw.at(1, 1), 200); // B site
}

TEST(Sensor, ResizesSceneToSensorResolution)
{
    SensorConfig cfg = sensorPreset480p();
    cfg.width = 8;
    cfg.height = 6;
    SensorModel sensor(cfg);
    Image scene(32, 32, PixelFormat::Rgb8);
    const Image raw = sensor.capture(scene);
    EXPECT_EQ(raw.width(), 8);
    EXPECT_EQ(raw.height(), 6);
}

TEST(Sensor, GrayCaptureAndFrameCount)
{
    SensorConfig cfg = sensorPreset480p();
    cfg.width = 8;
    cfg.height = 8;
    SensorModel sensor(cfg);
    Image scene(8, 8, PixelFormat::Gray8, 50);
    const Image g = sensor.captureGray(scene);
    EXPECT_EQ(g.at(3, 3), 50);
    sensor.captureGray(scene);
    EXPECT_EQ(sensor.frameCount(), 2u);
}

TEST(Sensor, NoiseIsBoundedAndSeeded)
{
    SensorConfig cfg = sensorPreset480p();
    cfg.width = 16;
    cfg.height = 16;
    cfg.read_noise_sigma = 2.0;
    SensorModel a(cfg), b(cfg);
    Image scene(16, 16, PixelFormat::Gray8, 128);
    const Image fa = a.captureGray(scene);
    const Image fb = b.captureGray(scene);
    EXPECT_EQ(fa, fb); // same seed -> identical noise
    int changed = 0;
    for (const u8 v : fa.data())
        if (v != 128)
            ++changed;
    EXPECT_GT(changed, 50);
}

TEST(Sensor, RejectsBadConfig)
{
    SensorConfig cfg;
    cfg.width = 0;
    EXPECT_THROW(SensorModel{cfg}, std::invalid_argument);
}

TEST(Csi2, BandwidthCheck4K60)
{
    Csi2Link link; // 4 lanes x 1.44 Gbps
    const u64 pixels_4k = 3840ULL * 2160ULL;
    // 4K60 RAW10 needs ~5.2 Gbps of the 5.76 Gbps the link offers.
    EXPECT_TRUE(link.supportsRate(pixels_4k, 60.0));
    EXPECT_FALSE(link.supportsRate(pixels_4k, 120.0));
}

TEST(Csi2, TransferAccounting)
{
    Csi2Link link;
    link.transferFrame(1000);
    link.transferFrame(500);
    EXPECT_EQ(link.pixelsTransferred(), 1500u);
    // 1 nJ/pixel default.
    EXPECT_NEAR(link.energyJoules(), 1500e-9, 1e-12);
    EXPECT_GT(link.bitsTransferred(), 15000.0); // 10 bpp + overhead
}

} // namespace
} // namespace rpx
