/**
 * @file
 * Zero-steady-state-allocation guarantees for the decode path (ISSUE 8).
 *
 * This TU replaces global operator new/delete with counting wrappers, so
 * it can assert that — after a warm-up decode populates the pooled
 * scratch (prefix caches, row-code buffers, the RhythmicDecoder's frame
 * arena) — repeated decodes of same-geometry frames perform ZERO heap
 * allocations: SoftwareDecoder::decodeInto, ParallelDecoder (threads=1),
 * and RhythmicDecoder::requestPixelsInto alike.
 *
 * The hooks are process-global, which is exactly why this suite lives in
 * its own binary: no other test sees the counting allocator, and gtest's
 * own allocations between EXPECT calls don't perturb the counters
 * because we only sample around the hot calls.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/frame_store.hpp"
#include "core/parallel_decoder.hpp"
#include "core/sw_decoder.hpp"
#include "memory/dram.hpp"

namespace {

std::atomic<unsigned long long> g_allocations{0};

unsigned long long
allocationCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

} // namespace

// Counting global allocator. Deliberately minimal: count + malloc/free.
void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace rpx {
namespace {

Image
noiseFrame(i32 w, i32 h, u64 seed)
{
    Rng rng(seed);
    Image img(w, h);
    for (i32 y = 0; y < h; ++y)
        for (i32 x = 0; x < w; ++x)
            img.set(x, y, static_cast<u8>(rng.uniformInt(0, 255)));
    return img;
}

std::vector<RegionLabel>
testRegions(i32 w, i32 h)
{
    std::vector<RegionLabel> regions = {
        {4, 4, w / 2, h / 2, 1, 1, 0},
        {w / 3, h / 3, w / 2, h / 2, 2, 2, 0},
        {0, 0, w, h, 4, 3, 1},
    };
    sortRegionsByY(regions);
    return regions;
}

TEST(DecodeAlloc, SoftwareDecoderSteadyStateAllocatesNothing)
{
    const i32 w = 96, h = 72;
    RhythmicEncoder enc(w, h);
    enc.setRegionLabels(testRegions(w, h));
    std::vector<EncodedFrame> frames;
    for (FrameIndex t = 0; t < 6; ++t)
        frames.push_back(enc.encodeFrame(noiseFrame(w, h, 3 + t), t));

    const SoftwareDecoder dec;
    Image out;
    std::vector<const EncodedFrame *> history;
    const auto decodeOne = [&](size_t newest) {
        history.clear();
        for (size_t k = 1; k <= 3; ++k)
            history.push_back(&frames[newest - k]);
        dec.decodeInto(frames[newest], history, out);
    };

    // Warm-up round: pools, prefix caches (built lazily per touched
    // row), and the output image allocate here. The measured round
    // decodes the same frames, i.e. the steady-state working set.
    decodeOne(5);
    decodeOne(4);
    decodeOne(3);

    const unsigned long long before = allocationCount();
    decodeOne(5);
    decodeOne(4);
    decodeOne(3);
    EXPECT_EQ(allocationCount() - before, 0u)
        << "steady-state whole-frame decode must not touch the heap";
    EXPECT_GT(out.pixelCount(), 0);
}

TEST(DecodeAlloc, TryDecodeSteadyStateAllocatesNothing)
{
    const i32 w = 96, h = 72;
    RhythmicEncoder enc(w, h);
    enc.setRegionLabels(testRegions(w, h));
    std::vector<EncodedFrame> frames;
    for (FrameIndex t = 0; t < 4; ++t)
        frames.push_back(enc.encodeFrame(noiseFrame(w, h, 11 + t), t));
    std::vector<const EncodedFrame *> history = {&frames[2], &frames[1],
                                                 &frames[0]};

    const SoftwareDecoder dec;
    Image out;
    ASSERT_TRUE(dec.tryDecode(frames[3], history, out).ok);
    ASSERT_TRUE(dec.tryDecode(frames[3], history, out).ok);

    const unsigned long long before = allocationCount();
    const SwDecodeStatus st = dec.tryDecode(frames[3], history, out);
    EXPECT_TRUE(st.ok);
    EXPECT_EQ(allocationCount() - before, 0u)
        << "the corruption-safe path must also be allocation-free warm";
}

TEST(DecodeAlloc, ParallelDecoderSerialPathAllocatesNothing)
{
    const i32 w = 96, h = 72;
    RhythmicEncoder enc(w, h);
    enc.setRegionLabels(testRegions(w, h));
    const EncodedFrame f0 = enc.encodeFrame(noiseFrame(w, h, 21), 0);
    const EncodedFrame f1 = enc.encodeFrame(noiseFrame(w, h, 22), 1);
    const std::vector<const EncodedFrame *> history = {&f0};

    ParallelDecoder dec; // threads = 1: the inline serial path
    Image out;
    dec.decodeInto(f1, history, out);
    dec.decodeInto(f1, history, out);

    const unsigned long long before = allocationCount();
    dec.decodeInto(f1, history, out);
    dec.decodeInto(f1, history, out);
    EXPECT_EQ(allocationCount() - before, 0u);
}

TEST(DecodeAlloc, RhythmicDecoderTransactionsAllocateNothingWarm)
{
    const i32 w = 128, h = 96;
    DramModel dram;
    RhythmicEncoder enc(w, h);
    FrameStore store(dram, w, h);
    enc.setRegionLabels(testRegions(w, h));
    for (FrameIndex t = 0; t < 4; ++t)
        store.store(enc.encodeFrame(noiseFrame(w, h, 31 + t), t));

    RhythmicDecoder dec(store);
    std::vector<u8> row;
    // Warm-up: scratchpad refresh mirrors all stored frames, the arena
    // sizes its staging buffers, and `row` reaches frame width.
    for (i32 y = 0; y < h; ++y)
        dec.requestPixelsInto(0, y, w, row);

    const unsigned long long before = allocationCount();
    for (i32 y = 0; y < h; ++y)
        dec.requestPixelsInto(0, y, w, row);
    EXPECT_EQ(allocationCount() - before, 0u)
        << "warm pixel transactions must not touch the heap";
    EXPECT_EQ(row.size(), static_cast<size_t>(w));
}

TEST(DecodeAlloc, ScratchpadRefreshAfterStoreIsAllocationFreeWarm)
{
    const i32 w = 128, h = 96;
    DramModel dram;
    RhythmicEncoder enc(w, h);
    FrameStore store(dram, w, h);
    enc.setRegionLabels(testRegions(w, h));
    RhythmicDecoder dec(store);
    std::vector<u8> row;

    // Fill the store's ring so later stores evict (steady state), and
    // run the measured request pattern after each store so the scratchpad
    // pool, the arena buffers, and every lazily-built prefix-cache row
    // the pattern touches reach their final capacity in every slot.
    for (FrameIndex t = 0; t < 8; ++t) {
        store.store(enc.encodeFrame(noiseFrame(w, h, 41 + t), t));
        for (i32 y = 0; y < h; y += 7)
            dec.requestPixelsInto(0, y, w, row);
    }

    // The store/encoder allocate for the new frame; that happens before
    // the measurement. The decoder's scratchpad refresh (triggered by the
    // first transaction after the store) and the transactions themselves
    // must reuse the pooled metadata and arena buffers.
    store.store(enc.encodeFrame(noiseFrame(w, h, 99), 8));
    const unsigned long long before = allocationCount();
    for (i32 y = 0; y < h; y += 7)
        dec.requestPixelsInto(0, y, w, row);
    EXPECT_EQ(allocationCount() - before, 0u)
        << "a warm scratchpad refresh must reuse its pooled metadata";
}

} // namespace
} // namespace rpx
