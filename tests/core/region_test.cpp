/** @file Unit tests for RegionLabel semantics and list utilities. */

#include <gtest/gtest.h>

#include "core/region.hpp"

namespace rpx {
namespace {

TEST(RegionLabel, ActiveAtSkipRhythm)
{
    RegionLabel r{0, 0, 10, 10, 1, 3, 0};
    EXPECT_TRUE(r.activeAt(0));
    EXPECT_FALSE(r.activeAt(1));
    EXPECT_FALSE(r.activeAt(2));
    EXPECT_TRUE(r.activeAt(3));
    EXPECT_TRUE(r.activeAt(6));
}

TEST(RegionLabel, PhaseShiftsRhythm)
{
    RegionLabel r{0, 0, 10, 10, 1, 2, 1};
    EXPECT_FALSE(r.activeAt(0));
    EXPECT_TRUE(r.activeAt(1));
    EXPECT_FALSE(r.activeAt(2));
    EXPECT_TRUE(r.activeAt(3));
}

TEST(RegionLabel, SkipOneIsEveryFrame)
{
    RegionLabel r{0, 0, 4, 4, 1, 1, 0};
    for (FrameIndex t = 0; t < 10; ++t)
        EXPECT_TRUE(r.activeAt(t));
}

TEST(RegionLabel, StrideGridRelativeToOrigin)
{
    RegionLabel r{5, 7, 20, 20, 3, 1, 0};
    EXPECT_TRUE(r.onStrideGrid(5, 7));
    EXPECT_TRUE(r.onStrideGrid(8, 10));
    EXPECT_FALSE(r.onStrideGrid(6, 7));
    EXPECT_FALSE(r.onStrideGrid(5, 8));
    EXPECT_TRUE(r.rowOnStride(7));
    EXPECT_FALSE(r.rowOnStride(8));
    EXPECT_TRUE(r.rowOnStride(10));
}

TEST(RegionLabel, SampledPixelsCeilingDivision)
{
    RegionLabel r{0, 0, 10, 10, 3, 1, 0};
    // ceil(10/3) = 4 per axis.
    EXPECT_EQ(r.sampledPixels(), 16);
    RegionLabel full{0, 0, 10, 10, 1, 1, 0};
    EXPECT_EQ(full.sampledPixels(), 100);
}

TEST(ValidateRegions, AcceptsPartiallyOutside)
{
    std::vector<RegionLabel> regions = {{-5, -5, 20, 20, 1, 1, 0}};
    EXPECT_NO_THROW(validateRegions(regions, 100, 100));
}

TEST(ValidateRegions, RejectsFullyOutside)
{
    std::vector<RegionLabel> regions = {{200, 200, 20, 20, 1, 1, 0}};
    EXPECT_THROW(validateRegions(regions, 100, 100),
                 std::invalid_argument);
}

TEST(ValidateRegions, RejectsBadParameters)
{
    EXPECT_THROW(validateRegions({{0, 0, 0, 10, 1, 1, 0}}, 100, 100),
                 std::invalid_argument);
    EXPECT_THROW(validateRegions({{0, 0, 10, 10, 0, 1, 0}}, 100, 100),
                 std::invalid_argument);
    EXPECT_THROW(validateRegions({{0, 0, 10, 10, 1, 0, 0}}, 100, 100),
                 std::invalid_argument);
    EXPECT_THROW(validateRegions({}, 0, 100), std::invalid_argument);
}

TEST(SortRegions, StableYSort)
{
    std::vector<RegionLabel> regions = {
        {0, 30, 5, 5, 1, 1, 0},
        {1, 10, 5, 5, 1, 1, 0},
        {2, 10, 5, 5, 2, 1, 0},
        {3, 5, 5, 5, 1, 1, 0},
    };
    sortRegionsByY(regions);
    EXPECT_TRUE(regionsSortedByY(regions));
    EXPECT_EQ(regions[0].y, 5);
    // Stability: the two y=10 regions keep their relative order.
    EXPECT_EQ(regions[1].x, 1);
    EXPECT_EQ(regions[2].x, 2);
}

TEST(FullFrameRegion, CoversEverything)
{
    const RegionLabel r = fullFrameRegion(640, 480);
    EXPECT_EQ(r.rect(), (Rect{0, 0, 640, 480}));
    EXPECT_EQ(r.stride, 1);
    EXPECT_EQ(r.skip, 1);
}

TEST(UnionArea, NonOverlapping)
{
    std::vector<RegionLabel> regions = {
        {0, 0, 10, 10, 1, 1, 0},
        {20, 20, 10, 10, 1, 1, 0},
    };
    EXPECT_EQ(unionArea(regions, 100, 100), 200);
}

TEST(UnionArea, OverlapCountedOnce)
{
    std::vector<RegionLabel> regions = {
        {0, 0, 10, 10, 1, 1, 0},
        {5, 0, 10, 10, 1, 1, 0},
    };
    EXPECT_EQ(unionArea(regions, 100, 100), 150);
}

TEST(UnionArea, ClipsToFrame)
{
    std::vector<RegionLabel> regions = {{-5, -5, 10, 10, 1, 1, 0}};
    EXPECT_EQ(unionArea(regions, 100, 100), 25);
}

} // namespace
} // namespace rpx
