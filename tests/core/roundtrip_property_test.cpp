/**
 * @file
 * Property-based tests of the encode/decode round trip: for randomized
 * region workloads, the decoder must reproduce every encoded pixel exactly,
 * reconstruct strided regions as block replication, recover skipped regions
 * from history when the scene is static, and agree with the software
 * decoder everywhere.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/frame_store.hpp"
#include "core/sw_decoder.hpp"
#include "frame/draw.hpp"
#include "memory/dram.hpp"

namespace rpx {
namespace {

Image
noiseFrame(i32 w, i32 h, u64 seed)
{
    Image img(w, h);
    Rng rng(seed);
    for (auto &b : img.data())
        b = static_cast<u8>(rng.uniformInt(1, 255)); // avoid black
    return img;
}

std::vector<RegionLabel>
randomRegions(Rng &rng, int count, i32 w, i32 h, int max_stride,
              int max_skip)
{
    std::vector<RegionLabel> regions;
    for (int i = 0; i < count; ++i) {
        RegionLabel r;
        r.w = static_cast<i32>(rng.uniformInt(4, w / 2));
        r.h = static_cast<i32>(rng.uniformInt(4, h / 2));
        r.x = static_cast<i32>(rng.uniformInt(0, w - 4));
        r.y = static_cast<i32>(rng.uniformInt(0, h - 4));
        r.stride = static_cast<i32>(rng.uniformInt(1, max_stride));
        r.skip = static_cast<i32>(rng.uniformInt(1, max_skip));
        regions.push_back(r);
    }
    sortRegionsByY(regions);
    return regions;
}

struct Case {
    int regions;
    int max_stride;
    int max_skip;
    u64 seed;
};

class RoundTripProperty : public ::testing::TestWithParam<Case>
{
  protected:
    static constexpr i32 kW = 64;
    static constexpr i32 kH = 48;
};

/** Every R pixel decodes to its exact source value. */
TEST_P(RoundTripProperty, EncodedPixelsDecodeExactly)
{
    const Case c = GetParam();
    Rng rng(c.seed);
    const auto regions =
        randomRegions(rng, c.regions, kW, kH, c.max_stride, c.max_skip);

    DramModel dram(1 << 26);
    RhythmicEncoder enc(kW, kH);
    FrameStore store(dram, kW, kH);
    RhythmicDecoder decoder(store);
    enc.setRegionLabels(regions);

    for (FrameIndex t = 0; t < 4; ++t) {
        const Image frame = noiseFrame(kW, kH, c.seed * 100 + t);
        const EncodedFrame encoded = enc.encodeFrame(frame, t);
        encoded.checkConsistency();
        store.store(encoded);

        for (i32 y = 0; y < kH; ++y) {
            const auto row = decoder.requestPixels(0, y, kW);
            for (i32 x = 0; x < kW; ++x) {
                if (encoded.mask.at(x, y) == PixelCode::R) {
                    EXPECT_EQ(row[static_cast<size_t>(x)], frame.at(x, y))
                        << "t=" << t << " (" << x << "," << y << ")";
                }
            }
        }
    }
}

/** The hardware decoder and the software decoder agree on every pixel. */
TEST_P(RoundTripProperty, HardwareMatchesSoftwareDecoder)
{
    const Case c = GetParam();
    Rng rng(c.seed ^ 0x1234);
    const auto regions =
        randomRegions(rng, c.regions, kW, kH, c.max_stride, c.max_skip);

    DramModel dram(1 << 26);
    RhythmicEncoder enc(kW, kH);
    FrameStore store(dram, kW, kH);
    RhythmicDecoder decoder(store);
    SoftwareDecoder sw;
    enc.setRegionLabels(regions);

    for (FrameIndex t = 0; t < 5; ++t)
        store.store(enc.encodeFrame(noiseFrame(kW, kH, t + 1), t));

    std::vector<const EncodedFrame *> history;
    for (size_t k = 1; k < store.size(); ++k)
        history.push_back(store.recent(k));
    const Image expected = sw.decode(*store.recent(0), history);

    for (i32 y = 0; y < kH; ++y) {
        const auto row = decoder.requestPixels(0, y, kW);
        for (i32 x = 0; x < kW; ++x)
            EXPECT_EQ(row[static_cast<size_t>(x)], expected.at(x, y))
                << "(" << x << "," << y << ")";
    }
}

/** Static scenes with temporal skip decode to the original content. */
TEST_P(RoundTripProperty, StaticSceneSurvivesSkip)
{
    const Case c = GetParam();
    Rng rng(c.seed ^ 0x77);
    auto regions =
        randomRegions(rng, c.regions, kW, kH, 1, c.max_skip);
    // Full density (stride 1) so in-region pixels are exact when active.

    DramModel dram(1 << 26);
    RhythmicEncoder enc(kW, kH);
    FrameStore store(dram, kW, kH);
    SoftwareDecoder sw;
    enc.setRegionLabels(regions);

    const Image frame = noiseFrame(kW, kH, 42);
    for (FrameIndex t = 0; t < 4; ++t)
        store.store(enc.encodeFrame(frame, t));

    std::vector<const EncodedFrame *> history;
    for (size_t k = 1; k < store.size(); ++k)
        history.push_back(store.recent(k));
    const Image decoded = sw.decode(*store.recent(0), history);

    // Every pixel covered by some region decodes to the original value:
    // max skip 3 guarantees a capture within the 4-frame history.
    for (i32 y = 0; y < kH; ++y) {
        for (i32 x = 0; x < kW; ++x) {
            bool covered = false;
            for (const auto &r : regions)
                covered |= r.rect().contains(x, y);
            if (covered) {
                EXPECT_EQ(decoded.at(x, y), frame.at(x, y))
                    << "(" << x << "," << y << ")";
            } else {
                EXPECT_EQ(decoded.at(x, y), 0);
            }
        }
    }
}

/** Encoding is deterministic. */
TEST_P(RoundTripProperty, EncodeIsDeterministic)
{
    const Case c = GetParam();
    Rng rng(c.seed ^ 0xbeef);
    const auto regions =
        randomRegions(rng, c.regions, kW, kH, c.max_stride, c.max_skip);
    RhythmicEncoder enc_a(kW, kH), enc_b(kW, kH);
    enc_a.setRegionLabels(regions);
    enc_b.setRegionLabels(regions);
    const Image frame = noiseFrame(kW, kH, 5);
    const EncodedFrame a = enc_a.encodeFrame(frame, 3);
    const EncodedFrame b = enc_b.encodeFrame(frame, 3);
    EXPECT_EQ(a.pixels, b.pixels);
    EXPECT_EQ(a.mask, b.mask);
    EXPECT_EQ(a.offsets, b.offsets);
}

/** Single strided region reconstructs as exact block replication. */
TEST_P(RoundTripProperty, StrideBlockReplication)
{
    const Case c = GetParam();
    const int s = 1 + static_cast<int>(c.seed % 4);
    const RegionLabel region{8, 6, 33, 29, s, 1, 0};
    DramModel dram(1 << 26);
    RhythmicEncoder enc(kW, kH);
    FrameStore store(dram, kW, kH);
    SoftwareDecoder sw;
    enc.setRegionLabels({region});

    const Image frame = noiseFrame(kW, kH, c.seed);
    store.store(enc.encodeFrame(frame, 0));
    const Image decoded = sw.decode(*store.recent(0));

    for (i32 y = region.y; y < region.y + region.h; ++y) {
        for (i32 x = region.x; x < region.x + region.w; ++x) {
            const i32 sx = x - (x - region.x) % s;
            const i32 sy = y - (y - region.y) % s;
            EXPECT_EQ(decoded.at(x, y), frame.at(sx, sy))
                << "(" << x << "," << y << ") stride " << s;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTripProperty,
    ::testing::Values(Case{1, 1, 1, 1}, Case{1, 4, 3, 2},
                      Case{3, 2, 2, 3}, Case{5, 3, 3, 4},
                      Case{8, 4, 2, 5}, Case{12, 2, 3, 6},
                      Case{20, 4, 3, 7}, Case{40, 3, 2, 8}));

/** History-depth sweep: a frame store of depth D serves skips of up to
 *  D-1 frames; deeper skips decode black. */
class HistoryDepthProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HistoryDepthProperty, SkipWithinWindowRecoversBeyondGoesBlack)
{
    const int depth = GetParam();
    const i32 w = 24, h = 24;
    DramModel dram(1 << 24);
    RhythmicEncoder enc(w, h);
    FrameStore store(dram, w, h, depth);
    RhythmicDecoder decoder(store);

    // Region skips exactly `depth` frames: after the active frame 0, the
    // next `depth - 1` frames can still resolve from history; at frame
    // `depth` the source frame has been evicted... unless it is exactly
    // the retention boundary.
    enc.setRegionLabels({{0, 0, w, h, 1, depth + 1, 0}});
    const Image frame = noiseFrame(w, h, 31);
    for (FrameIndex t = 0; t <= depth; ++t)
        store.store(enc.encodeFrame(frame, t));

    // Stored frames now: t = depth, depth-1, ..., 1 (depth of them) when
    // depth+1 frames were pushed. Frame 0 (the only R capture) was
    // evicted, so every pixel is black.
    const auto px = decoder.requestPixels(0, 5, w);
    for (const u8 v : px)
        EXPECT_EQ(v, 0);

    // With skip == depth, the source stays inside the window.
    DramModel dram2(1 << 24);
    RhythmicEncoder enc2(w, h);
    FrameStore store2(dram2, w, h, depth);
    RhythmicDecoder decoder2(store2);
    enc2.setRegionLabels({{0, 0, w, h, 1, depth, 0}});
    for (FrameIndex t = 0; t < depth; ++t)
        store2.store(enc2.encodeFrame(frame, t));
    const auto px2 = decoder2.requestPixels(0, 5, w);
    for (i32 x = 0; x < w; ++x)
        EXPECT_EQ(px2[static_cast<size_t>(x)], frame.at(x, 5));
}

INSTANTIATE_TEST_SUITE_P(Depths, HistoryDepthProperty,
                         ::testing::Values(2, 3, 4, 6));

/** Phase property: shifting the phase shifts the whole activity pattern. */
class PhaseProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(PhaseProperty, PhaseShiftsRhythmNotContent)
{
    const int phase = GetParam();
    const int skip = 4;
    const i32 w = 16, h = 16;
    RhythmicEncoder enc(w, h);
    enc.setRegionLabels({{0, 0, w, h, 1, skip, phase}});
    const Image frame = noiseFrame(w, h, 77);
    for (FrameIndex t = 0; t < 10; ++t) {
        const EncodedFrame out = enc.encodeFrame(frame, t);
        const bool active = t >= phase && (t - phase) % skip == 0;
        if (active) {
            EXPECT_EQ(out.pixels.size(),
                      static_cast<size_t>(w) * static_cast<size_t>(h))
                << "t=" << t;
        } else {
            EXPECT_TRUE(out.pixels.empty()) << "t=" << t;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Phases, PhaseProperty,
                         ::testing::Values(0, 1, 2, 3));

} // namespace
} // namespace rpx
