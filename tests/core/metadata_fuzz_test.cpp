/**
 * @file
 * Metadata-corruption fuzzing: thousands of seeded random mutations of an
 * encoded frame's mask, row-offset table, payload, and CRC seal, pushed
 * through the corruption-safe decode paths. The contract under test:
 *
 *   - SoftwareDecoder::tryDecode never throws and never reads out of
 *     range on arbitrary metadata — every case either decodes or
 *     quarantines;
 *   - a frame whose corruption survives bounds validation still decodes
 *     into a well-formed image (garbage values are fine, crashes are not);
 *   - with a CRC seal, every metadata mutation is either detected
 *     (quarantined / CRC mismatch) or harmless to decode;
 *   - the DRAM-backed path (FrameStore + RhythmicDecoder) serves requests
 *     without throwing when stored metadata is corrupted under CRC
 *     protection.
 *
 * Run under ASan/UBSan in CI (the fault-smoke job); any OOB access fails
 * the build even when the decoded bytes would look plausible.
 */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/frame_store.hpp"
#include "core/sw_decoder.hpp"
#include "memory/dram.hpp"

namespace rpx {
namespace {

constexpr i32 kW = 48;
constexpr i32 kH = 36;

Image
sceneFrame(u64 salt)
{
    Image img(kW, kH);
    for (i32 y = 0; y < kH; ++y)
        for (i32 x = 0; x < kW; ++x)
            img.set(x, y,
                    static_cast<u8>((x * 7 + y * 13 + salt * 31) % 251));
    return img;
}

/** Encode a couple of frames so history paths are exercised too. */
std::vector<EncodedFrame>
encodeSequence(int frames)
{
    RhythmicEncoder enc(kW, kH);
    enc.setRegionLabels({{2, 2, kW / 2, kH / 2, 2, 2, 0},
                         {4, 20, kW / 3, kH / 3, 1, 1, 0}});
    std::vector<EncodedFrame> out;
    for (int t = 0; t < frames; ++t)
        out.push_back(
            enc.encodeFrame(sceneFrame(static_cast<u64>(t)), t));
    return out;
}

/** Apply one seeded random mutation batch to the frame's metadata. */
void
mutate(EncodedFrame &frame, Rng &rng)
{
    const int mutations = static_cast<int>(rng.uniformInt(1, 6));
    for (int m = 0; m < mutations; ++m) {
        switch (rng.uniformInt(0, 4)) {
          case 0: { // flip bits in the packed mask
            std::vector<u8> bytes = frame.mask.bytes();
            if (!bytes.empty()) {
                const size_t i = static_cast<size_t>(
                    rng.uniformInt(0, static_cast<i64>(bytes.size()) - 1));
                bytes[i] ^= static_cast<u8>(1u << rng.uniformInt(0, 7));
                frame.mask = EncMask(kW, kH, std::move(bytes));
            }
            break;
          }
          case 1: { // corrupt one serialized offset word, rebuild wrap-diff
            std::vector<u8> words = frame.packOffsets();
            const size_t i = static_cast<size_t>(
                rng.uniformInt(0, static_cast<i64>(words.size()) - 1));
            words[i] ^= static_cast<u8>(rng.uniformInt(1, 255));
            RowOffsets rebuilt(kH);
            auto word = [&](i32 y) {
                const size_t b = static_cast<size_t>(y) * 4;
                return static_cast<u32>(words[b]) |
                       (static_cast<u32>(words[b + 1]) << 8) |
                       (static_cast<u32>(words[b + 2]) << 16) |
                       (static_cast<u32>(words[b + 3]) << 24);
            };
            for (i32 y = 0; y + 1 < kH; ++y)
                rebuilt.setRowCount(y, word(y + 1) - word(y));
            rebuilt.setRowCount(kH - 1, frame.mask.encodedInRow(kH - 1));
            frame.offsets = std::move(rebuilt);
            break;
          }
          case 2: { // truncate or extend the payload
            if (rng.chance(0.5) && !frame.pixels.empty())
                frame.pixels.resize(static_cast<size_t>(rng.uniformInt(
                    0, static_cast<i64>(frame.pixels.size()) - 1)));
            else
                frame.pixels.resize(
                    frame.pixels.size() +
                        static_cast<size_t>(rng.uniformInt(1, 64)),
                    0xEE);
            break;
          }
          case 3: { // break the CRC seal itself
            frame.metadata_crc ^=
                static_cast<u32>(rng.next() | 1); // never a no-op
            break;
          }
          case 4: { // rewrite a whole row's offset with a huge value
            RowOffsets wild(kH);
            for (i32 y = 0; y < kH; ++y) {
                u32 count = (y + 1 < frame.height)
                                ? frame.offsets.offsetOf(y + 1) -
                                      frame.offsets.offsetOf(y)
                                : frame.offsets.total() -
                                      frame.offsets.offsetOf(y);
                if (rng.chance(0.1))
                    count = static_cast<u32>(rng.next());
                wild.setRowCount(y, count);
            }
            frame.offsets = std::move(wild);
            break;
          }
        }
    }
}

TEST(MetadataFuzz, TryDecodeNeverThrowsOnMutatedMetadata)
{
    const std::vector<EncodedFrame> clean = encodeSequence(3);
    std::vector<const EncodedFrame *> history{&clean[1], &clean[0]};
    SoftwareDecoder sw;
    const Image reference = sw.decode(clean[2], history);

    Rng rng(0xF0221D);
    int quarantined = 0, decoded = 0;
    constexpr int kCases = 6000;
    for (int c = 0; c < kCases; ++c) {
        EncodedFrame mutant = clean[2];
        if (rng.chance(0.5))
            mutant.sealMetadata(); // sealed-then-corrupted half
        mutate(mutant, rng);

        Image out;
        SwDecodeStatus st;
        ASSERT_NO_THROW(st = sw.tryDecode(mutant, history, out))
            << "case " << c;
        if (st.quarantined) {
            ++quarantined;
            EXPECT_TRUE(out.empty()) << "case " << c;
        } else {
            ++decoded;
            ASSERT_EQ(out.width(), kW);
            ASSERT_EQ(out.height(), kH);
        }
    }
    // The mutation mix must exercise both outcomes. Most mutations are
    // caught (payload-size and CRC checks are strict), but a meaningful
    // share must survive validation and drive the bounds-checked decode
    // of not-quite-consistent metadata.
    EXPECT_GT(quarantined, kCases / 2);
    EXPECT_GT(decoded, 50);
}

TEST(MetadataFuzz, CorruptHistoryFramesAreSkippedNotFatal)
{
    const std::vector<EncodedFrame> clean = encodeSequence(4);
    SoftwareDecoder sw;

    Rng rng2(0x6157);
    for (int c = 0; c < 2000; ++c) {
        EncodedFrame h0 = clean[2];
        EncodedFrame h1 = clean[1];
        mutate(h0, rng2);
        if (rng2.chance(0.3))
            mutate(h1, rng2);
        std::vector<const EncodedFrame *> history{&h0, &h1, nullptr};

        Image out;
        SwDecodeStatus st;
        ASSERT_NO_THROW(st = sw.tryDecode(clean[3], history, out))
            << "case " << c;
        EXPECT_FALSE(st.quarantined);
        ASSERT_EQ(out.width(), kW);
        ASSERT_EQ(out.height(), kH);
        EXPECT_GE(st.history_skipped, 1u); // the null entry at minimum
    }
}

TEST(MetadataFuzz, SealedFrameDetectsEveryMetadataMutation)
{
    const std::vector<EncodedFrame> clean = encodeSequence(2);
    SoftwareDecoder sw;
    Rng rng(0xC4C);
    for (int c = 0; c < 2000; ++c) {
        EncodedFrame mutant = clean[1];
        mutant.sealMetadata();
        const std::vector<u8> mask_before = mutant.mask.bytes();
        const std::vector<u8> offs_before = mutant.packOffsets();
        mutate(mutant, rng);
        const bool metadata_changed =
            mutant.mask.bytes() != mask_before ||
            mutant.packOffsets() != offs_before;

        Image out;
        const SwDecodeStatus st =
            sw.tryDecode(mutant, {&clean[0]}, out);
        if (metadata_changed) {
            // A sealed frame with altered metadata must never decode as
            // if it were intact.
            EXPECT_TRUE(st.quarantined) << "case " << c;
        }
    }
}

TEST(MetadataFuzz, DramBackedDecoderSurvivesStoredCorruption)
{
    // Corrupt the metadata bytes in DRAM behind the store's back and let
    // the hardware-path decoder fetch them; with CRC protection on, every
    // request must be served (from history or black) without throwing.
    Rng rng(0xD12A);
    for (int round = 0; round < 60; ++round) {
        DramModel dram(16u << 20);
        FrameStore store(dram, kW, kH, 4);
        store.enableMetadataCrc(true);
        RhythmicDecoder decoder(store);

        RhythmicEncoder enc(kW, kH);
        enc.setRegionLabels({{2, 2, kW / 2, kH / 2, 2, 2, 0}});
        for (int t = 0; t < 4; ++t)
            store.store(enc.encodeFrame(
                sceneFrame(static_cast<u64>(t)), t));

        // Smash random bytes of every slot's metadata (and sometimes the
        // CRC cell, which must also be caught or harmless).
        for (size_t k = 0; k < store.size(); ++k) {
            const StoredFrameAddrs *addrs = store.recentAddrs(k);
            for (int hits = 0; hits < 8; ++hits) {
                const BufferRange &r = rng.chance(0.45)
                                           ? addrs->mask
                                           : (rng.chance(0.8)
                                                  ? addrs->offsets
                                                  : addrs->crc);
                const u64 a = r.base + static_cast<u64>(rng.uniformInt(
                                          0, static_cast<i64>(r.size) - 1));
                u8 b = dram.peek(a);
                b ^= static_cast<u8>(1u << rng.uniformInt(0, 7));
                dram.write(a, &b, 1);
            }
        }

        ASSERT_NO_THROW({
            const std::vector<u8> px =
                decoder.requestPixels(0, 0, kW * kH);
            ASSERT_EQ(px.size(), static_cast<size_t>(kW) * kH);
        }) << "round " << round;
        EXPECT_GT(decoder.stats().frames_quarantined, 0u)
            << "round " << round;
    }
}

} // namespace
} // namespace rpx
