/**
 * @file
 * Failure-injection tests: corrupt metadata, inconsistent encoded frames,
 * and DRAM payload corruption. The invariant checker must catch malformed
 * frames before they reach the decoder, and payload corruption must stay
 * contained to the affected pixels (no crashes, no out-of-bounds).
 */

#include <gtest/gtest.h>

#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/frame_store.hpp"
#include "core/sw_decoder.hpp"
#include "memory/dram.hpp"

namespace rpx {
namespace {

Image
rampFrame(i32 w, i32 h)
{
    Image img(w, h);
    for (i32 y = 0; y < h; ++y)
        for (i32 x = 0; x < w; ++x)
            img.set(x, y, static_cast<u8>((x + y) % 200 + 20));
    return img;
}

EncodedFrame
encodeOne(i32 w, i32 h)
{
    RhythmicEncoder enc(w, h);
    enc.setRegionLabels({{2, 2, w / 2, h / 2, 2, 1, 0}});
    return enc.encodeFrame(rampFrame(w, h), 0);
}

TEST(FaultInjection, TruncatedPayloadCaught)
{
    EncodedFrame frame = encodeOne(32, 32);
    frame.pixels.pop_back();
    EXPECT_THROW(frame.checkConsistency(), std::runtime_error);
}

TEST(FaultInjection, ExtraPayloadCaught)
{
    EncodedFrame frame = encodeOne(32, 32);
    frame.pixels.push_back(0);
    EXPECT_THROW(frame.checkConsistency(), std::runtime_error);
}

TEST(FaultInjection, CorruptedRowOffsetCaught)
{
    EncodedFrame frame = encodeOne(32, 32);
    // Shift one row's prefix count: the offsets no longer match the mask.
    RowOffsets bad(32);
    for (i32 y = 0; y < 32; ++y) {
        const u32 next = (y + 1 < 32) ? frame.offsets.offsetOf(y + 1)
                                      : frame.offsets.total();
        bad.setRowCount(y, next - frame.offsets.offsetOf(y) + (y == 5));
    }
    frame.offsets = bad;
    EXPECT_THROW(frame.checkConsistency(), std::runtime_error);
}

TEST(FaultInjection, CorruptedMaskCaught)
{
    EncodedFrame frame = encodeOne(32, 32);
    // Flip an N pixel to R: the mask now promises more payload.
    ASSERT_EQ(frame.mask.at(31, 31), PixelCode::N);
    frame.mask.set(31, 31, PixelCode::R);
    EXPECT_THROW(frame.checkConsistency(), std::runtime_error);
}

TEST(FaultInjection, StoreRejectsInconsistentFrame)
{
    DramModel dram(1 << 24);
    FrameStore store(dram, 32, 32);
    EncodedFrame frame = encodeOne(32, 32);
    frame.pixels.pop_back();
    EXPECT_THROW(store.store(std::move(frame)), std::runtime_error);
}

TEST(FaultInjection, DramPayloadCorruptionIsContained)
{
    // Flip bytes in the stored payload: the decoder must return corrupted
    // values only for the affected pixels and never misbehave otherwise.
    DramModel dram(1 << 24);
    RhythmicEncoder enc(32, 32);
    FrameStore store(dram, 32, 32);
    RhythmicDecoder decoder(store);
    enc.setRegionLabels({fullFrameRegion(32, 32)});
    const Image frame = rampFrame(32, 32);
    store.store(enc.encodeFrame(frame, 0));

    // Corrupt the first byte of row 3's payload behind the store's back.
    const StoredFrameAddrs *addrs = store.recentAddrs(0);
    const u64 victim = addrs->pixels.base + 3 * 32;
    const u8 original = dram.peek(victim);
    const u8 flipped = static_cast<u8>(original ^ 0xff);
    dram.write(victim, &flipped, 1);

    const auto row3 = decoder.requestPixels(0, 3, 32);
    EXPECT_EQ(row3[0], flipped); // corruption visible where injected
    for (i32 x = 1; x < 32; ++x)
        EXPECT_EQ(row3[static_cast<size_t>(x)], frame.at(x, 3));
    const auto row4 = decoder.requestPixels(0, 4, 32);
    for (i32 x = 0; x < 32; ++x)
        EXPECT_EQ(row4[static_cast<size_t>(x)], frame.at(x, 4));
}

TEST(FaultInjection, DecoderConsumesDramMetadataNotSimulatorState)
{
    // Corrupt the EncMask bytes in DRAM: the hardware decoder (which
    // loads its scratchpad from memory) must change behaviour, proving it
    // does not peek at simulator-side state.
    DramModel dram(1 << 24);
    RhythmicEncoder enc(32, 32);
    FrameStore store(dram, 32, 32);
    enc.setRegionLabels({fullFrameRegion(32, 32)});
    const Image frame = rampFrame(32, 32);
    store.store(enc.encodeFrame(frame, 0));

    // Zero the first mask byte: pixels (0..3, 0) become N in memory.
    const StoredFrameAddrs *addrs = store.recentAddrs(0);
    const u8 zero = 0;
    dram.write(addrs->mask.base, &zero, 1);

    RhythmicDecoder decoder(store);
    const auto row = decoder.requestPixels(0, 0, 8);
    // Pixels 0..3 now read as non-regional (black); the in-row R count
    // shifts, so pixel 4 maps to the payload of original pixel 0 — the
    // decode tracks the *memory* content exactly.
    for (int x = 0; x < 4; ++x)
        EXPECT_EQ(row[static_cast<size_t>(x)], 0) << x;
    for (int x = 4; x < 8; ++x)
        EXPECT_EQ(row[static_cast<size_t>(x)], frame.at(x - 4, 0)) << x;
}

TEST(FaultInjection, SoftwareDecoderRejectsMalformedInput)
{
    EncodedFrame frame = encodeOne(32, 32);
    frame.pixels.clear();
    const SoftwareDecoder sw;
    EXPECT_THROW(sw.decode(frame), std::runtime_error);
}

TEST(FaultInjection, HistoryGeometryMismatchCaught)
{
    const EncodedFrame a = encodeOne(32, 32);
    const EncodedFrame b = encodeOne(16, 16);
    const SoftwareDecoder sw;
    EXPECT_THROW(sw.decode(a, {&b}), std::runtime_error);
}

} // namespace
} // namespace rpx
