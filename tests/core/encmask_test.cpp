/** @file Unit tests for the EncMask and per-row offsets metadata. */

#include <gtest/gtest.h>

#include "core/encmask.hpp"

namespace rpx {
namespace {

TEST(EncMask, DefaultsToNonRegional)
{
    EncMask mask(8, 4);
    for (i32 y = 0; y < 4; ++y)
        for (i32 x = 0; x < 8; ++x)
            EXPECT_EQ(mask.at(x, y), PixelCode::N);
}

TEST(EncMask, SetAndGetAllCodes)
{
    EncMask mask(4, 1);
    mask.set(0, 0, PixelCode::N);
    mask.set(1, 0, PixelCode::St);
    mask.set(2, 0, PixelCode::Sk);
    mask.set(3, 0, PixelCode::R);
    EXPECT_EQ(mask.at(0, 0), PixelCode::N);
    EXPECT_EQ(mask.at(1, 0), PixelCode::St);
    EXPECT_EQ(mask.at(2, 0), PixelCode::Sk);
    EXPECT_EQ(mask.at(3, 0), PixelCode::R);
}

TEST(EncMask, OverwriteCode)
{
    EncMask mask(2, 2);
    mask.set(1, 1, PixelCode::R);
    mask.set(1, 1, PixelCode::St);
    EXPECT_EQ(mask.at(1, 1), PixelCode::St);
    // Neighbours untouched.
    EXPECT_EQ(mask.at(0, 1), PixelCode::N);
}

TEST(EncMask, TwoBitsPerPixelPacking)
{
    // §4.1.2: the EncMask occupies 2 bits per pixel — ~500 KB for a 1080p
    // frame, 8% of the original (3-byte RGB) frame data.
    EncMask mask(1920, 1080);
    EXPECT_EQ(mask.packedBytes(), 1920u * 1080u / 4u);
    EXPECT_NEAR(static_cast<double>(mask.packedBytes()) / 1024.0, 500.0,
                20.0);
    const double overhead = static_cast<double>(mask.packedBytes()) /
                            (1920.0 * 1080.0 * 3.0);
    EXPECT_NEAR(overhead, 0.08, 0.01); // "roughly 8%"
}

TEST(EncMask, EncodedBeforeCountsOnlyR)
{
    EncMask mask(6, 1);
    mask.set(0, 0, PixelCode::R);
    mask.set(1, 0, PixelCode::St);
    mask.set(2, 0, PixelCode::R);
    mask.set(3, 0, PixelCode::Sk);
    mask.set(4, 0, PixelCode::R);
    EXPECT_EQ(mask.encodedBefore(0, 0), 0u);
    EXPECT_EQ(mask.encodedBefore(1, 0), 1u);
    EXPECT_EQ(mask.encodedBefore(3, 0), 2u);
    EXPECT_EQ(mask.encodedBefore(5, 0), 3u);
    EXPECT_EQ(mask.encodedInRow(0), 3u);
}

TEST(EncMask, Histogram)
{
    EncMask mask(4, 2);
    mask.set(0, 0, PixelCode::R);
    mask.set(1, 0, PixelCode::R);
    mask.set(2, 0, PixelCode::St);
    mask.set(0, 1, PixelCode::Sk);
    const auto h = mask.histogram();
    EXPECT_EQ(h[static_cast<size_t>(PixelCode::N)], 4u);
    EXPECT_EQ(h[static_cast<size_t>(PixelCode::St)], 1u);
    EXPECT_EQ(h[static_cast<size_t>(PixelCode::Sk)], 1u);
    EXPECT_EQ(h[static_cast<size_t>(PixelCode::R)], 2u);
}

TEST(EncMask, CodeNames)
{
    EXPECT_STREQ(pixelCodeName(PixelCode::N), "N");
    EXPECT_STREQ(pixelCodeName(PixelCode::St), "St");
    EXPECT_STREQ(pixelCodeName(PixelCode::Sk), "Sk");
    EXPECT_STREQ(pixelCodeName(PixelCode::R), "R");
}

TEST(RowOffsets, FromMaskPrefixSums)
{
    EncMask mask(4, 3);
    mask.set(0, 0, PixelCode::R);
    mask.set(1, 0, PixelCode::R);
    mask.set(2, 1, PixelCode::R);
    const RowOffsets offsets(mask);
    EXPECT_EQ(offsets.offsetOf(0), 0u);
    EXPECT_EQ(offsets.offsetOf(1), 2u);
    EXPECT_EQ(offsets.offsetOf(2), 3u);
    EXPECT_EQ(offsets.total(), 3u);
    EXPECT_EQ(offsets.height(), 3);
}

TEST(RowOffsets, IncrementalConstruction)
{
    RowOffsets offsets(3);
    offsets.setRowCount(0, 5);
    offsets.setRowCount(1, 0);
    offsets.setRowCount(2, 7);
    EXPECT_EQ(offsets.offsetOf(0), 0u);
    EXPECT_EQ(offsets.offsetOf(1), 5u);
    EXPECT_EQ(offsets.offsetOf(2), 5u);
    EXPECT_EQ(offsets.total(), 12u);
}

TEST(EncMask, AsciiRendering)
{
    EncMask mask(8, 8);
    for (i32 y = 0; y < 4; ++y)
        for (i32 x = 0; x < 4; ++x)
            mask.set(x, y, PixelCode::R);
    for (i32 y = 4; y < 8; ++y)
        for (i32 x = 4; x < 8; ++x)
            mask.set(x, y, PixelCode::St);
    const std::string art = maskToAscii(mask, 4);
    EXPECT_EQ(art, "#.\n.:\n");
    EXPECT_THROW(maskToAscii(mask, 0), std::invalid_argument);
}

TEST(EncMask, BlitRowsStitchesAlignedBands)
{
    // Odd width: individual rows are not byte-aligned, but any 4-row
    // boundary is (4 rows x 2 bits = exactly w bytes) — the invariant the
    // parallel encoder's band stitching rests on.
    const i32 w = 5, h = 12;
    EncMask whole(w, h);
    EncMask stitched(w, h);
    const PixelCode codes[] = {PixelCode::N, PixelCode::St, PixelCode::Sk,
                               PixelCode::R};
    for (i32 y0 = 0; y0 < h; y0 += 4) {
        EncMask band(w, 4);
        for (i32 y = 0; y < 4; ++y) {
            for (i32 x = 0; x < w; ++x) {
                const PixelCode c = codes[(x + 2 * (y0 + y)) % 4];
                band.set(x, y, c);
                whole.set(x, y0 + y, c);
            }
        }
        stitched.blitRows(band, y0);
    }
    EXPECT_EQ(stitched, whole);
    EXPECT_EQ(stitched.bytes(), whole.bytes());

    EncMask misaligned(w, 4);
    EXPECT_THROW(stitched.blitRows(misaligned, 2), std::runtime_error);
    EncMask wrong_width(w + 1, 4);
    EXPECT_THROW(stitched.blitRows(wrong_width, 4), std::invalid_argument);
}

TEST(RowOffsets, PackedBytesFourPerRow)
{
    RowOffsets offsets(1080);
    EXPECT_EQ(offsets.packedBytes(), 1080u * 4u);
}

} // namespace
} // namespace rpx
