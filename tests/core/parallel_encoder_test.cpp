/** @file Serial-vs-parallel bit-identity tests for the ParallelEncoder. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/parallel_encoder.hpp"
#include "frame/draw.hpp"

namespace rpx {
namespace {

Image
noiseFrame(i32 w, i32 h, u64 seed)
{
    Rng rng(seed);
    Image img(w, h);
    for (i32 y = 0; y < h; ++y)
        for (i32 x = 0; x < w; ++x)
            img.set(x, y, static_cast<u8>(rng.uniformInt(0, 255)));
    return img;
}

/** A varied, overlapping, y-sorted label list for a w x h frame. */
std::vector<RegionLabel>
scatterRegions(i32 w, i32 h, u64 seed, int count)
{
    Rng rng(seed);
    std::vector<RegionLabel> regions;
    for (int i = 0; i < count; ++i) {
        RegionLabel r;
        r.w = static_cast<i32>(rng.uniformInt(1, std::max<i64>(1, w / 2)));
        r.h = static_cast<i32>(rng.uniformInt(1, std::max<i64>(1, h / 2)));
        r.x = static_cast<i32>(rng.uniformInt(0, w - r.w));
        r.y = static_cast<i32>(rng.uniformInt(0, h - r.h));
        r.stride = static_cast<i32>(rng.uniformInt(1, 3));
        r.skip = static_cast<i32>(rng.uniformInt(1, 3));
        r.phase = static_cast<i32>(rng.uniformInt(0, r.skip - 1));
        regions.push_back(r);
    }
    sortRegionsByY(regions);
    return regions;
}

void
expectStatsEqual(const EncoderStats &a, const EncoderStats &b)
{
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.pixels_in, b.pixels_in);
    EXPECT_EQ(a.pixels_encoded, b.pixels_encoded);
    EXPECT_EQ(a.region_comparisons, b.region_comparisons);
    EXPECT_EQ(a.selector_examined, b.selector_examined);
    EXPECT_EQ(a.rows_with_regions, b.rows_with_regions);
    EXPECT_EQ(a.rows_skipped, b.rows_skipped);
    EXPECT_EQ(a.run_reuses, b.run_reuses);
    EXPECT_EQ(a.compare_cycles, b.compare_cycles);
    EXPECT_EQ(a.stream_cycles, b.stream_cycles);
}

void
expectFramesIdentical(const EncodedFrame &s, const EncodedFrame &p)
{
    EXPECT_EQ(p.index, s.index);
    EXPECT_EQ(p.pixels, s.pixels);
    EXPECT_EQ(p.mask, s.mask);
    EXPECT_EQ(p.mask.bytes(), s.mask.bytes());
    EXPECT_EQ(p.offsets, s.offsets);
}

/**
 * The headline property (ISSUE 4): for every comparison mode, thread
 * count, and awkward frame geometry, the parallel encoder's output is
 * byte-identical to the serial encoder's — pixels, packed mask bytes, row
 * offsets, and the full stats block.
 */
TEST(ParallelEncoder, BitIdenticalToSerialAcrossModesAndThreads)
{
    const ComparisonMode modes[] = {ComparisonMode::Naive,
                                    ComparisonMode::RowSublist,
                                    ComparisonMode::Hybrid};
    const int thread_counts[] = {1, 2, 7};
    // Odd widths exercise mask rows that are not byte-aligned; odd heights
    // exercise a final band shorter than the others.
    const std::pair<i32, i32> geometries[] = {{57, 33}, {64, 47}, {31, 64}};

    for (const ComparisonMode mode : modes) {
        for (const int threads : thread_counts) {
            for (const auto &[w, h] : geometries) {
                RhythmicEncoder::Config scfg;
                scfg.mode = mode;
                RhythmicEncoder serial(w, h, scfg);

                ParallelEncoder::Config pcfg;
                pcfg.encoder.mode = mode;
                pcfg.threads = threads;
                pcfg.min_band_rows = 4; // force many bands on small frames
                ParallelEncoder parallel(w, h, pcfg);

                const auto regions = scatterRegions(
                    w, h, 0xA5u * static_cast<u64>(w + h), 12);
                serial.setRegionLabels(regions);
                parallel.setRegionLabels(regions);

                for (FrameIndex t = 0; t < 4; ++t) {
                    const Image frame =
                        noiseFrame(w, h, 17u * static_cast<u64>(t) + 3u);
                    const EncodedFrame s = serial.encodeFrame(frame, t);
                    const EncodedFrame p = parallel.encodeFrame(frame, t);
                    s.checkConsistency();
                    p.checkConsistency();
                    expectFramesIdentical(s, p);
                }
                expectStatsEqual(serial.stats(), parallel.stats());
                EXPECT_EQ(serial.withinCycleBudget(),
                          parallel.withinCycleBudget());
            }
        }
    }
}

TEST(ParallelEncoder, HandlesEmptyRegionListAndFullFrame)
{
    const i32 w = 40, h = 37;
    RhythmicEncoder serial(w, h);
    ParallelEncoder::Config pcfg;
    pcfg.threads = 3;
    pcfg.min_band_rows = 4;
    ParallelEncoder parallel(w, h, pcfg);
    const Image frame = noiseFrame(w, h, 99);

    for (const std::vector<RegionLabel> &regions :
         {std::vector<RegionLabel>{},
          std::vector<RegionLabel>{fullFrameRegion(w, h)}}) {
        serial.setRegionLabels(regions);
        parallel.setRegionLabels(regions);
        expectFramesIdentical(serial.encodeFrame(frame, 0),
                              parallel.encodeFrame(frame, 0));
    }
    expectStatsEqual(serial.stats(), parallel.stats());
}

TEST(ParallelEncoder, PartitionCoversAllRowsWithAlignedBands)
{
    for (const i32 rows : {1, 3, 4, 16, 17, 33, 47, 480, 1080}) {
        for (const int bands : {1, 2, 3, 7, 16}) {
            const auto ranges = ParallelEncoder::partition(rows, bands, 4);
            ASSERT_FALSE(ranges.empty());
            i32 next = 0;
            for (const auto &[y0, y1] : ranges) {
                EXPECT_EQ(y0, next) << "gap/overlap at band start";
                EXPECT_LT(y0, y1);
                EXPECT_EQ(y0 % 4, 0)
                    << "band start must stay byte-aligned in the mask";
                next = y1;
            }
            EXPECT_EQ(next, rows) << "bands must cover every row";
            EXPECT_LE(static_cast<int>(ranges.size()), bands);
        }
    }
}

TEST(ParallelEncoder, ZeroThreadsResolvesToHardwareConcurrency)
{
    ParallelEncoder::Config cfg;
    cfg.threads = 0;
    ParallelEncoder enc(32, 32, cfg);
    EXPECT_GE(enc.threadCount(), 1);
}

TEST(ParallelEncoder, RejectsBadConfig)
{
    ParallelEncoder::Config cfg;
    cfg.threads = -1;
    EXPECT_THROW(ParallelEncoder(32, 32, cfg), std::invalid_argument);
    cfg.threads = 2;
    cfg.min_band_rows = 6; // not a multiple of 4
    EXPECT_THROW(ParallelEncoder(32, 32, cfg), std::invalid_argument);
    cfg.min_band_rows = 0;
    EXPECT_THROW(ParallelEncoder(32, 32, cfg), std::invalid_argument);
}

} // namespace
} // namespace rpx
