/** @file Unit tests for the rhythmic pixel encoder. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/encoder.hpp"
#include "frame/draw.hpp"

namespace rpx {
namespace {

Image
rampFrame(i32 w, i32 h)
{
    Image img(w, h);
    for (i32 y = 0; y < h; ++y)
        for (i32 x = 0; x < w; ++x)
            img.set(x, y, static_cast<u8>((x + 7 * y) & 0xff));
    return img;
}

TEST(Encoder, FullFrameRegionKeepsEverything)
{
    RhythmicEncoder enc(16, 12);
    enc.setRegionLabels({fullFrameRegion(16, 12)});
    const Image frame = rampFrame(16, 12);
    const EncodedFrame out = enc.encodeFrame(frame, 0);
    out.checkConsistency();
    EXPECT_EQ(out.pixels.size(), 16u * 12u);
    EXPECT_DOUBLE_EQ(out.keptFraction(), 1.0);
    // Raster order preserved.
    for (i32 i = 0; i < 16; ++i)
        EXPECT_EQ(out.pixels[static_cast<size_t>(i)], frame.at(i, 0));
}

TEST(Encoder, NoRegionsKeepsNothing)
{
    RhythmicEncoder::Config cfg;
    RhythmicEncoder enc(8, 8, cfg);
    enc.setRegionLabels({});
    const EncodedFrame out = enc.encodeFrame(rampFrame(8, 8), 0);
    out.checkConsistency();
    EXPECT_TRUE(out.pixels.empty());
    EXPECT_EQ(out.mask.histogram()[static_cast<size_t>(PixelCode::N)],
              64u);
}

TEST(Encoder, SingleRegionPacksRasterOrder)
{
    RhythmicEncoder enc(10, 10);
    enc.setRegionLabels({{2, 3, 4, 2, 1, 1, 0}});
    const Image frame = rampFrame(10, 10);
    const EncodedFrame out = enc.encodeFrame(frame, 0);
    out.checkConsistency();
    ASSERT_EQ(out.pixels.size(), 8u);
    size_t i = 0;
    for (i32 y = 3; y < 5; ++y)
        for (i32 x = 2; x < 6; ++x)
            EXPECT_EQ(out.pixels[i++], frame.at(x, y));
}

TEST(Encoder, StrideDecimatesGrid)
{
    RhythmicEncoder enc(8, 8);
    enc.setRegionLabels({{0, 0, 8, 8, 2, 1, 0}});
    const EncodedFrame out = enc.encodeFrame(rampFrame(8, 8), 0);
    out.checkConsistency();
    EXPECT_EQ(out.pixels.size(), 16u); // 4x4 grid
    EXPECT_EQ(out.mask.at(0, 0), PixelCode::R);
    EXPECT_EQ(out.mask.at(1, 0), PixelCode::St);
    EXPECT_EQ(out.mask.at(0, 1), PixelCode::St);
    EXPECT_EQ(out.mask.at(2, 2), PixelCode::R);
}

TEST(Encoder, SkipMarksTemporal)
{
    RhythmicEncoder enc(8, 8);
    enc.setRegionLabels({{0, 0, 8, 8, 1, 2, 0}});
    const EncodedFrame f0 = enc.encodeFrame(rampFrame(8, 8), 0);
    const EncodedFrame f1 = enc.encodeFrame(rampFrame(8, 8), 1);
    EXPECT_EQ(f0.pixels.size(), 64u);
    EXPECT_TRUE(f1.pixels.empty());
    EXPECT_EQ(f1.mask.at(3, 3), PixelCode::Sk);
    const EncodedFrame f2 = enc.encodeFrame(rampFrame(8, 8), 2);
    EXPECT_EQ(f2.pixels.size(), 64u);
}

TEST(Encoder, OverlapPriorityRBeatsStBeatsSk)
{
    RhythmicEncoder::Config cfg;
    cfg.require_sorted = false;
    RhythmicEncoder enc(12, 12, cfg);
    // Region A: stride 2, active. Region B overlapping, stride 1, skip 2
    // (inactive on frame 1). Region C non-overlapping inactive.
    enc.setRegionLabels({
        {0, 0, 6, 6, 2, 1, 0},   // active strided
        {0, 0, 3, 3, 1, 2, 0},   // inactive at t=1 (skip 2)
    });
    const EncodedFrame out = enc.encodeFrame(rampFrame(12, 12), 1);
    // (1,1): A says St (off grid), B inactive says Sk; St wins.
    EXPECT_EQ(out.mask.at(1, 1), PixelCode::St);
    // (0,0): A grid pixel -> R despite B's Sk.
    EXPECT_EQ(out.mask.at(0, 0), PixelCode::R);
}

TEST(Encoder, MatchesReferenceClassifier)
{
    RhythmicEncoder::Config cfg;
    cfg.require_sorted = false;
    RhythmicEncoder enc(32, 24, cfg);
    const std::vector<RegionLabel> regions = {
        {2, 2, 10, 8, 2, 1, 0},
        {8, 4, 12, 12, 3, 2, 0},
        {-4, 18, 16, 10, 1, 3, 1},
        {20, 0, 30, 6, 2, 2, 0},
    };
    enc.setRegionLabels(regions);
    const Image frame = rampFrame(32, 24);
    for (FrameIndex t = 0; t < 6; ++t) {
        const EncodedFrame out = enc.encodeFrame(frame, t);
        out.checkConsistency();
        for (i32 y = 0; y < 24; ++y) {
            for (i32 x = 0; x < 32; ++x) {
                EXPECT_EQ(out.mask.at(x, y),
                          RhythmicEncoder::classify(regions, x, y, t))
                    << "t=" << t << " (" << x << "," << y << ")";
            }
        }
    }
}

TEST(Encoder, RequiresSortedByDefault)
{
    RhythmicEncoder enc(32, 32);
    std::vector<RegionLabel> unsorted = {
        {0, 20, 5, 5, 1, 1, 0},
        {0, 2, 5, 5, 1, 1, 0},
    };
    EXPECT_THROW(enc.setRegionLabels(unsorted), std::invalid_argument);
    sortRegionsByY(unsorted);
    EXPECT_NO_THROW(enc.setRegionLabels(unsorted));
}

TEST(Encoder, GeometryMismatchThrows)
{
    RhythmicEncoder enc(16, 16);
    enc.setRegionLabels({fullFrameRegion(16, 16)});
    EXPECT_THROW(enc.encodeFrame(rampFrame(8, 8), 0),
                 std::invalid_argument);
    Image rgb(16, 16, PixelFormat::Rgb8);
    EXPECT_THROW(enc.encodeFrame(rgb, 0), std::invalid_argument);
}

TEST(Encoder, WorkSavingsOfHybridVsNaive)
{
    // §4.1.1: the row shortlist + run-length reuse saves comparisons.
    const std::vector<RegionLabel> regions = [] {
        std::vector<RegionLabel> rs;
        Rng rng(3);
        for (int i = 0; i < 50; ++i) {
            rs.push_back({static_cast<i32>(rng.uniformInt(0, 100)),
                          static_cast<i32>(rng.uniformInt(0, 100)),
                          20, 20, 1, 1, 0});
        }
        sortRegionsByY(rs);
        return rs;
    }();

    u64 work[3];
    const ComparisonMode modes[3] = {ComparisonMode::Naive,
                                     ComparisonMode::RowSublist,
                                     ComparisonMode::Hybrid};
    const Image frame = rampFrame(128, 128);
    EncodedFrame outs[3];
    for (int m = 0; m < 3; ++m) {
        RhythmicEncoder::Config cfg;
        cfg.mode = modes[m];
        RhythmicEncoder enc(128, 128, cfg);
        enc.setRegionLabels(regions);
        outs[m] = enc.encodeFrame(frame, 0);
        work[m] = enc.stats().region_comparisons;
    }
    // All modes produce identical output.
    EXPECT_EQ(outs[0].pixels, outs[1].pixels);
    EXPECT_EQ(outs[0].mask, outs[1].mask);
    EXPECT_EQ(outs[1].pixels, outs[2].pixels);
    EXPECT_EQ(outs[1].mask, outs[2].mask);
    // Work strictly shrinks: naive > row sublist > hybrid.
    EXPECT_GT(work[0], work[1]);
    EXPECT_GT(work[1], work[2]);
}

TEST(Encoder, HybridMeetsCycleBudgetWithManyRegions)
{
    std::vector<RegionLabel> regions;
    Rng rng(17);
    for (int i = 0; i < 400; ++i) {
        regions.push_back({static_cast<i32>(rng.uniformInt(0, 600)),
                           static_cast<i32>(rng.uniformInt(0, 440)),
                           30, 30, static_cast<i32>(rng.uniformInt(1, 3)),
                           static_cast<i32>(rng.uniformInt(1, 3)), 0});
    }
    sortRegionsByY(regions);
    RhythmicEncoder enc(640, 480);
    enc.setRegionLabels(regions);
    enc.encodeFrame(rampFrame(640, 480), 0);
    EXPECT_TRUE(enc.withinCycleBudget());
}

TEST(Encoder, RegionFreeRowsStillChargeStreamCycles)
{
    // Regression: rows with an empty shortlist used to return before the
    // cycle model, so sparse frames reported fewer cycles than the pixel
    // stream actually takes. Every row streams at line rate regardless of
    // regions.
    RhythmicEncoder enc(64, 64); // default 2 px/clock -> 32 cycles/row
    enc.setRegionLabels({{8, 8, 8, 8, 1, 1, 0}}); // 56 region-free rows
    enc.encodeFrame(rampFrame(64, 64), 0);
    const EncoderStats &st = enc.stats();
    EXPECT_EQ(st.rows_skipped, 56u);
    EXPECT_EQ(st.stream_cycles, 64u * 32u);
    // Hybrid engine work never exceeds the stream time here, so the
    // modelled cycles equal the budget exactly — not just <=.
    EXPECT_EQ(st.compare_cycles, st.stream_cycles);
    EXPECT_TRUE(enc.withinCycleBudget());
}

TEST(Encoder, StreamCyclesRoundUpPerRow)
{
    // Odd width: 63 px at 2 px/clock is 32 cycles per row, rounded up
    // per row (not once per frame).
    RhythmicEncoder enc(63, 10);
    enc.setRegionLabels({});
    enc.encodeFrame(rampFrame(63, 10), 0);
    EXPECT_EQ(enc.stats().stream_cycles, 10u * 32u);
    EXPECT_EQ(enc.stats().compare_cycles, enc.stats().stream_cycles);
}

TEST(Encoder, NaiveModeChargesEngineCyclesOnSkippedRows)
{
    // Regression: the naive engine checks every region for every pixel
    // even on rows no region covers. With enough labels those rows are
    // engine-bound; pre-fix their cycles were dropped entirely and the
    // encoder claimed to meet the 2 px/clock budget.
    RhythmicEncoder::Config cfg;
    cfg.mode = ComparisonMode::Naive;
    RhythmicEncoder enc(64, 64, cfg);
    std::vector<RegionLabel> regions(64, RegionLabel{0, 0, 4, 4, 1, 1, 0});
    enc.setRegionLabels(regions);
    enc.encodeFrame(rampFrame(64, 64), 0);
    const EncoderStats &st = enc.stats();
    // Rows 4..63: 64 regions x 64 px = 4096 checks -> 256 engine cycles,
    // eight times the 32-cycle stream slot.
    EXPECT_EQ(st.stream_cycles, 64u * 32u);
    EXPECT_GT(st.compare_cycles, st.stream_cycles);
    EXPECT_FALSE(enc.withinCycleBudget());
    // The same row budget is fine for the shortlist-based engine.
    RhythmicEncoder hybrid(64, 64);
    hybrid.setRegionLabels(regions);
    hybrid.encodeFrame(rampFrame(64, 64), 0);
    EXPECT_TRUE(hybrid.withinCycleBudget());
}

TEST(Encoder, SummarizeMatchesEncode)
{
    const std::vector<RegionLabel> regions = {
        {3, 1, 17, 9, 2, 1, 0},
        {10, 8, 20, 14, 3, 2, 0},
        {0, 20, 40, 6, 1, 3, 0},
    };
    RhythmicEncoder::Config cfg;
    cfg.require_sorted = false;
    RhythmicEncoder enc(48, 32, cfg);
    enc.setRegionLabels(regions);
    const Image frame = rampFrame(48, 32);
    for (FrameIndex t = 0; t < 7; ++t) {
        const EncodedFrame out = enc.encodeFrame(frame, t);
        const auto sum = enc.summarizeFrame(t);
        const auto h = out.mask.histogram();
        EXPECT_EQ(sum.r, h[static_cast<size_t>(PixelCode::R)]) << t;
        EXPECT_EQ(sum.st, h[static_cast<size_t>(PixelCode::St)]) << t;
        EXPECT_EQ(sum.sk, h[static_cast<size_t>(PixelCode::Sk)]) << t;
        EXPECT_EQ(sum.n, h[static_cast<size_t>(PixelCode::N)]) << t;
        EXPECT_EQ(sum.metadata_bytes, out.metadataBytes());
        EXPECT_EQ(sum.total(), 48u * 32u);
    }
}

TEST(Encoder, StatsAccumulate)
{
    RhythmicEncoder enc(16, 16);
    enc.setRegionLabels({fullFrameRegion(16, 16)});
    enc.encodeFrame(rampFrame(16, 16), 0);
    enc.encodeFrame(rampFrame(16, 16), 1);
    EXPECT_EQ(enc.stats().frames, 2u);
    EXPECT_EQ(enc.stats().pixels_in, 2u * 256u);
    EXPECT_EQ(enc.stats().pixels_encoded, 2u * 256u);
    enc.resetStats();
    EXPECT_EQ(enc.stats().frames, 0u);
}

/** Property sweep over stride x skip combinations. */
class EncoderStrideSkip
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(EncoderStrideSkip, CountsMatchClosedForm)
{
    const int stride = std::get<0>(GetParam());
    const int skip = std::get<1>(GetParam());
    RhythmicEncoder enc(24, 24);
    enc.setRegionLabels({{4, 4, 13, 11, stride, skip, 0}});
    const Image frame = rampFrame(24, 24);
    for (FrameIndex t = 0; t < 4; ++t) {
        const EncodedFrame out = enc.encodeFrame(frame, t);
        out.checkConsistency();
        if (t % skip == 0) {
            const i64 cols = (13 + stride - 1) / stride;
            const i64 rows = (11 + stride - 1) / stride;
            EXPECT_EQ(static_cast<i64>(out.pixels.size()), cols * rows);
        } else {
            EXPECT_TRUE(out.pixels.empty());
            EXPECT_EQ(out.mask.at(6, 6), PixelCode::Sk);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncoderStrideSkip,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3)));

} // namespace
} // namespace rpx
