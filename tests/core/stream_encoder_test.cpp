/** @file Unit tests for the beat-level streaming encoder front-end. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/encoder.hpp"
#include "core/stream_encoder.hpp"
#include "frame/draw.hpp"

namespace rpx {
namespace {

Image
noiseFrame(i32 w, i32 h, u64 seed)
{
    Image img(w, h);
    Rng rng(seed);
    for (auto &b : img.data())
        b = static_cast<u8>(rng.uniformInt(0, 255));
    return img;
}

std::vector<RegionLabel>
mixedRegions()
{
    std::vector<RegionLabel> regions = {
        {2, 2, 14, 10, 2, 1, 0},
        {20, 5, 18, 20, 3, 2, 0},
        {-4, 24, 30, 10, 1, 3, 0},
    };
    sortRegionsByY(regions);
    return regions;
}

/** Push a whole frame through the streaming interface. */
EncodedFrame
streamFrame(StreamingEncoder &enc, const Image &frame, FrameIndex t)
{
    enc.beginFrame(t);
    streamImage(frame, [&](const PixelBeat &b) {
        while (!enc.pushBeat(b))
            enc.drain(1); // backpressure: drain one beat, retry
        return true;
    });
    return enc.finishFrame();
}

TEST(StreamingEncoder, MatchesFrameAtATimeEncoder)
{
    const i32 w = 48, h = 36;
    const auto regions = mixedRegions();
    RhythmicEncoder reference(w, h);
    StreamingEncoder streaming(w, h);
    reference.setRegionLabels(regions);
    streaming.setRegionLabels(regions);

    for (FrameIndex t = 0; t < 5; ++t) {
        const Image frame = noiseFrame(w, h, 10 + static_cast<u64>(t));
        const EncodedFrame a = reference.encodeFrame(frame, t);
        const EncodedFrame b = streamFrame(streaming, frame, t);
        EXPECT_EQ(a.pixels, b.pixels) << "t=" << t;
        EXPECT_EQ(a.mask, b.mask) << "t=" << t;
        EXPECT_EQ(a.offsets, b.offsets) << "t=" << t;
    }
}

TEST(StreamingEncoder, FifoBackpressure)
{
    StreamingEncoder enc(32, 8);
    enc.setRegionLabels({fullFrameRegion(32, 8)});
    enc.beginFrame(0);
    // Fill the FIFO without draining: depth is 16, but pushBeat drains
    // opportunistically when full, so pushes keep succeeding while the
    // FIFO never exceeds its depth.
    const Image frame = noiseFrame(32, 8, 3);
    u64 pushed = 0;
    streamImage(frame, [&](const PixelBeat &b) {
        EXPECT_LE(enc.pendingBeats(), 16u);
        while (!enc.pushBeat(b))
            enc.drain(1);
        ++pushed;
        return true;
    });
    EXPECT_EQ(pushed, 32u * 8u);
    const EncodedFrame out = enc.finishFrame();
    EXPECT_EQ(out.pixels.size(), 32u * 8u);
}

TEST(StreamingEncoder, IncompleteFrameThrows)
{
    StreamingEncoder enc(16, 16);
    enc.setRegionLabels({fullFrameRegion(16, 16)});
    enc.beginFrame(0);
    PixelBeat beat;
    beat.sof = true;
    ASSERT_TRUE(enc.pushBeat(beat));
    EXPECT_THROW(enc.finishFrame(), std::runtime_error);
}

TEST(StreamingEncoder, ApiMisuseThrows)
{
    StreamingEncoder enc(8, 8);
    enc.setRegionLabels({});
    EXPECT_THROW(enc.pushBeat(PixelBeat{}), std::runtime_error);
    enc.beginFrame(0);
    EXPECT_THROW(enc.finishFrame(), std::runtime_error); // 0 of 64 beats
}

TEST(StreamingEncoder, SkippedFrameProducesEmptyPayload)
{
    StreamingEncoder enc(16, 16);
    enc.setRegionLabels({{0, 0, 16, 16, 1, 2, 0}});
    const Image frame = noiseFrame(16, 16, 9);
    const EncodedFrame f1 = streamFrame(enc, frame, 1); // inactive frame
    EXPECT_TRUE(f1.pixels.empty());
    EXPECT_EQ(f1.mask.at(5, 5), PixelCode::Sk);
}

} // namespace
} // namespace rpx
