/** @file Unit tests for the rhythmic pixel decoder (PMMU + sampling unit). */

#include <gtest/gtest.h>

#include "core/decoder.hpp"
#include "core/encoder.hpp"
#include "core/sw_decoder.hpp"
#include "memory/dram.hpp"

namespace rpx {
namespace {

Image
rampFrame(i32 w, i32 h)
{
    Image img(w, h);
    for (i32 y = 0; y < h; ++y)
        for (i32 x = 0; x < w; ++x)
            img.set(x, y, static_cast<u8>((3 * x + 11 * y) % 251 + 1));
    return img;
}

struct DecoderRig {
    DramModel dram;
    RhythmicEncoder encoder;
    FrameStore store;
    RhythmicDecoder decoder;

    DecoderRig(i32 w, i32 h)
        : dram(1 << 26), encoder(w, h), store(dram, w, h),
          decoder(store)
    {
    }

    void
    push(const Image &frame, FrameIndex t,
         const std::vector<RegionLabel> &labels)
    {
        auto sorted = labels;
        sortRegionsByY(sorted);
        encoder.setRegionLabels(sorted);
        store.store(encoder.encodeFrame(frame, t));
    }
};

TEST(Decoder, FullFrameRegionReproducesPixels)
{
    DecoderRig rig(16, 12);
    const Image frame = rampFrame(16, 12);
    rig.push(frame, 0, {fullFrameRegion(16, 12)});

    const auto row = rig.decoder.requestPixels(0, 5, 16);
    for (i32 x = 0; x < 16; ++x)
        EXPECT_EQ(row[static_cast<size_t>(x)], frame.at(x, 5));
}

TEST(Decoder, NonRegionalPixelsAreBlack)
{
    DecoderRig rig(16, 16);
    rig.push(rampFrame(16, 16), 0, {{4, 4, 4, 4, 1, 1, 0}});
    const auto px = rig.decoder.requestPixels(0, 0, 4);
    for (const u8 v : px)
        EXPECT_EQ(v, 0);
    EXPECT_EQ(rig.decoder.stats().black_pixels, 4u);
}

TEST(Decoder, StridedPixelsBlockReplicate)
{
    DecoderRig rig(16, 16);
    const Image frame = rampFrame(16, 16);
    rig.push(frame, 0, {{0, 0, 16, 16, 2, 1, 0}});
    // Row 0 is on the vertical stride: St pixels hold the left R.
    auto row0 = rig.decoder.requestPixels(0, 0, 16);
    for (i32 x = 0; x < 16; ++x)
        EXPECT_EQ(row0[static_cast<size_t>(x)], frame.at(x & ~1, 0));
    // Row 1 is off the vertical stride: copies from row 0's grid.
    auto row1 = rig.decoder.requestPixels(0, 1, 16);
    for (i32 x = 0; x < 16; ++x)
        EXPECT_EQ(row1[static_cast<size_t>(x)], frame.at(x & ~1, 0));
    EXPECT_GT(rig.decoder.stats().resampled_pixels, 0u);
}

TEST(Decoder, SkippedPixelsComeFromHistory)
{
    DecoderRig rig(8, 8);
    const Image f0 = rampFrame(8, 8);
    Image f1 = f0;
    f1.fill(200); // would be the new values, but the region skips frame 1
    const std::vector<RegionLabel> labels = {{0, 0, 8, 8, 1, 2, 0}};
    rig.push(f0, 0, labels);
    rig.push(f1, 1, labels);

    // Frame 1 is temporally skipped; the decoder must serve frame 0 data.
    const auto px = rig.decoder.requestPixels(0, 3, 8);
    for (i32 x = 0; x < 8; ++x)
        EXPECT_EQ(px[static_cast<size_t>(x)], f0.at(x, 3));
    EXPECT_GT(rig.decoder.stats().history_hits, 0u);
    EXPECT_GT(rig.decoder.stats().sub_requests_inter, 0u);
}

TEST(Decoder, HistoryMissFallsBackToBlack)
{
    DecoderRig rig(8, 8);
    // Skip 2 with phase 1: frame 0 is inactive and there is no history.
    rig.push(rampFrame(8, 8), 0, {{0, 0, 8, 8, 1, 2, 1}});
    const auto px = rig.decoder.requestPixels(0, 0, 8);
    for (const u8 v : px)
        EXPECT_EQ(v, 0);
    EXPECT_GT(rig.decoder.stats().history_misses, 0u);
}

TEST(Decoder, MatchesSoftwareDecoderOnMixedScene)
{
    const i32 w = 48, h = 40;
    DecoderRig rig(w, h);
    const std::vector<RegionLabel> labels = {
        {2, 2, 14, 12, 2, 1, 0},
        {20, 6, 20, 18, 3, 2, 0},
        {6, 24, 30, 12, 1, 3, 0},
    };
    SoftwareDecoder sw;
    for (FrameIndex t = 0; t < 5; ++t)
        rig.push(rampFrame(w, h), t, labels);

    std::vector<const EncodedFrame *> history;
    for (size_t k = 1; k < rig.store.size(); ++k)
        history.push_back(rig.store.recent(k));
    const Image expected = sw.decode(*rig.store.recent(0), history);

    for (i32 y = 0; y < h; ++y) {
        const auto row = rig.decoder.requestPixels(0, y, w);
        for (i32 x = 0; x < w; ++x)
            EXPECT_EQ(row[static_cast<size_t>(x)], expected.at(x, y))
                << "(" << x << "," << y << ")";
    }
}

TEST(Decoder, RequestSpanningRows)
{
    DecoderRig rig(8, 8);
    const Image frame = rampFrame(8, 8);
    rig.push(frame, 0, {fullFrameRegion(8, 8)});
    const auto px = rig.decoder.requestPixels(6, 2, 6);
    EXPECT_EQ(px[0], frame.at(6, 2));
    EXPECT_EQ(px[1], frame.at(7, 2));
    EXPECT_EQ(px[2], frame.at(0, 3));
    EXPECT_EQ(px[5], frame.at(3, 3));
}

TEST(Decoder, RequestValidation)
{
    DecoderRig rig(8, 8);
    rig.push(rampFrame(8, 8), 0, {fullFrameRegion(8, 8)});
    EXPECT_THROW(rig.decoder.requestPixels(-1, 0, 4),
                 std::invalid_argument);
    EXPECT_THROW(rig.decoder.requestPixels(0, 8, 1),
                 std::invalid_argument);
    EXPECT_THROW(rig.decoder.requestPixels(7, 7, 3),
                 std::invalid_argument);
    EXPECT_NO_THROW(rig.decoder.requestPixels(7, 7, 1));
}

TEST(Decoder, EmptyStoreThrows)
{
    DramModel dram(1 << 20);
    FrameStore store(dram, 8, 8);
    RhythmicDecoder decoder(store);
    EXPECT_THROW(decoder.requestPixels(0, 0, 1), std::runtime_error);
}

TEST(Decoder, OutOfFrameHandlerBypasses)
{
    DecoderRig rig(8, 8);
    rig.push(rampFrame(8, 8), 0, {fullFrameRegion(8, 8)});
    // Write a marker into plain DRAM and read it through the decoder.
    rig.dram.write(0x500000, std::vector<u8>{42, 43});
    const auto bytes = rig.decoder.requestBytes(0x500000, 2);
    EXPECT_EQ(bytes[0], 42);
    EXPECT_EQ(bytes[1], 43);
    EXPECT_EQ(rig.decoder.stats().bypassed, 1u);

    // An address inside the decoded window is translated instead.
    const Image frame = rampFrame(8, 8);
    const auto px =
        rig.decoder.requestBytes(rig.decoder.decodedBase() + 8, 8);
    for (i32 x = 0; x < 8; ++x)
        EXPECT_EQ(px[static_cast<size_t>(x)], frame.at(x, 1));
    EXPECT_EQ(rig.decoder.stats().bypassed, 1u);
}

TEST(Decoder, ByteRequestStraddlingApertureEndSplits)
{
    // Regression: a transaction that *starts* inside the decoded-frame
    // aperture but runs past its end was routed entirely to bypass,
    // returning raw DRAM content for the in-frame bytes. The handler must
    // split it: pixel-translate the in-aperture part, bypass the rest.
    const i32 w = 8, h = 8;
    DramModel dram(1 << 23);
    RhythmicEncoder encoder(w, h);
    FrameStore store(dram, w, h);
    RhythmicDecoder::Config dc;
    // A small aperture base keeps the bypass reads within test-sized DRAM
    // (the default 2 GB base would balloon the backing store).
    dc.decoded_base = 0x400000;
    RhythmicDecoder decoder(store, dc);

    const Image frame = rampFrame(w, h);
    encoder.setRegionLabels({fullFrameRegion(w, h)});
    store.store(encoder.encodeFrame(frame, 0));

    const u64 end = dc.decoded_base + decoder.decodedSize();
    dram.write(end, std::vector<u8>{0xAA, 0xBB, 0xCC});

    // Last 4 pixels of the frame + 3 bytes past the aperture.
    const auto bytes = decoder.requestBytes(end - 4, 7);
    ASSERT_EQ(bytes.size(), 7u);
    for (i32 i = 0; i < 4; ++i)
        EXPECT_EQ(bytes[static_cast<size_t>(i)], frame.at(4 + i, 7));
    EXPECT_EQ(bytes[4], 0xAA);
    EXPECT_EQ(bytes[5], 0xBB);
    EXPECT_EQ(bytes[6], 0xCC);
    EXPECT_EQ(decoder.stats().bypassed, 1u); // the suffix read only
}

TEST(Decoder, ByteRequestStraddlingApertureStartSplits)
{
    const i32 w = 8, h = 8;
    DramModel dram(1 << 23);
    RhythmicEncoder encoder(w, h);
    FrameStore store(dram, w, h);
    RhythmicDecoder::Config dc;
    dc.decoded_base = 0x400000;
    RhythmicDecoder decoder(store, dc);

    const Image frame = rampFrame(w, h);
    encoder.setRegionLabels({fullFrameRegion(w, h)});
    store.store(encoder.encodeFrame(frame, 0));

    dram.write(dc.decoded_base - 2, std::vector<u8>{0x11, 0x22});

    // Two bytes before the aperture + the first 4 pixels of row 0.
    const auto head = decoder.requestBytes(dc.decoded_base - 2, 6);
    ASSERT_EQ(head.size(), 6u);
    EXPECT_EQ(head[0], 0x11);
    EXPECT_EQ(head[1], 0x22);
    for (i32 i = 0; i < 4; ++i)
        EXPECT_EQ(head[static_cast<size_t>(i + 2)], frame.at(i, 0));
    EXPECT_EQ(decoder.stats().bypassed, 1u);

    // A request overlapping both edges splits into three parts.
    const auto all =
        decoder.requestBytes(dc.decoded_base - 1, decoder.decodedSize() + 2);
    ASSERT_EQ(all.size(), static_cast<size_t>(w) * h + 2);
    EXPECT_EQ(all[0], 0x22);
    for (i32 y = 0; y < h; ++y)
        for (i32 x = 0; x < w; ++x)
            EXPECT_EQ(all[static_cast<size_t>(1 + y * w + x)],
                      frame.at(x, y));
    EXPECT_EQ(decoder.stats().bypassed, 3u); // prefix + suffix added two
}

TEST(Decoder, ScratchpadTracksNewestFrameAcrossRingWrap)
{
    // Regression: the scratchpad staleness check compared stored
    // EncodedFrame pointers only. Once the history ring wraps, the store
    // can hand a new frame the heap storage of an evicted one, leaving a
    // matching pointer over stale mirrored metadata. The (pointer, index)
    // key refreshes correctly, so the decoder always serves the newest
    // frame's content.
    DecoderRig rig(8, 8);
    const std::vector<RegionLabel> labels = {fullFrameRegion(8, 8)};
    for (FrameIndex t = 0; t < 12; ++t) { // 3x the 4-deep history ring
        Image frame(8, 8);
        frame.fill(static_cast<u8>(40 + 3 * t));
        rig.push(frame, t, labels);
        const auto row = rig.decoder.requestPixels(0, 0, 8);
        for (const u8 v : row)
            ASSERT_EQ(v, static_cast<u8>(40 + 3 * t)) << "t=" << t;
    }
}

TEST(Decoder, LatencyIsTensOfNanoseconds)
{
    // §6.3: the decoder adds "a few 10s of ns" per transaction.
    DecoderRig rig(64, 64);
    rig.push(rampFrame(64, 64), 0, {fullFrameRegion(64, 64)});
    for (i32 y = 0; y < 8; ++y)
        rig.decoder.requestPixels(0, y, 8);
    const double ns = rig.decoder.avgLatencyNs();
    EXPECT_GT(ns, 5.0);
    EXPECT_LT(ns, 200.0);
}

TEST(Decoder, CoalescesContiguousReads)
{
    DecoderRig rig(32, 4);
    rig.push(rampFrame(32, 4), 0, {fullFrameRegion(32, 4)});
    rig.decoder.requestPixels(0, 0, 32);
    // One whole encoded row -> one coalesced DRAM read.
    EXPECT_EQ(rig.decoder.stats().dram_reads, 1u);
    EXPECT_EQ(rig.decoder.stats().dram_pixel_bytes, 32u);
}

TEST(Decoder, SplitsRunsAtBurstBoundary)
{
    DecoderRig rig(256, 2);
    const Image frame = rampFrame(256, 2);
    rig.push(frame, 0, {fullFrameRegion(256, 2)});
    const auto row = rig.decoder.requestPixels(0, 0, 256);
    // A 256-byte contiguous run splits into 4 bursts of <= 64 bytes.
    EXPECT_EQ(rig.decoder.stats().dram_reads, 4u);
    EXPECT_EQ(rig.decoder.stats().dram_pixel_bytes, 256u);
    for (i32 x = 0; x < 256; ++x)
        EXPECT_EQ(row[static_cast<size_t>(x)], frame.at(x, 0));
}

TEST(Decoder, GapCoalescingIsByteIdenticalAndNeverSlower)
{
    // Several regions separated by non-regional gaps give the coalescer
    // payload runs with small holes between them. With burst_gap_bytes >
    // 0 it may read through those holes: the decoded bytes must stay
    // identical and the burst count (hence modelled cycles) can only
    // shrink, while fetched payload bytes can only grow (gap bytes are
    // fetched and discarded).
    const i32 w = 96, h = 32;
    const std::vector<RegionLabel> labels = {
        {0, 0, 20, h, 2, 1, 0},
        {28, 0, 12, h, 1, 1, 0},
        {48, 0, 20, h, 3, 1, 0},
        {76, 0, 16, h, 2, 1, 0},
    };
    const Image frame = rampFrame(w, h);

    DecoderRig legacy(w, h);
    legacy.push(frame, 0, labels);

    DramModel dram2(1 << 26);
    RhythmicEncoder enc2(w, h);
    FrameStore store2(dram2, w, h);
    auto sorted = labels;
    sortRegionsByY(sorted);
    enc2.setRegionLabels(sorted);
    store2.store(enc2.encodeFrame(frame, 0));
    RhythmicDecoder::Config gap_cfg;
    gap_cfg.burst_gap_bytes = 8;
    RhythmicDecoder gapped(store2, gap_cfg);

    for (i32 y = 0; y < h; ++y)
        EXPECT_EQ(gapped.requestPixels(0, y, w),
                  legacy.decoder.requestPixels(0, y, w))
            << "gap coalescing changed decoded bytes at row " << y;

    const DecoderStats &a = legacy.decoder.stats();
    const DecoderStats &b = gapped.stats();
    EXPECT_EQ(b.pixels_requested, a.pixels_requested);
    EXPECT_EQ(b.black_pixels, a.black_pixels);
    EXPECT_EQ(b.resampled_pixels, a.resampled_pixels);
    EXPECT_LE(b.dram_reads, a.dram_reads)
        << "reading through gaps must not add bursts";
    EXPECT_LE(b.cycles, a.cycles);
    EXPECT_GE(b.dram_pixel_bytes, a.dram_pixel_bytes)
        << "gap bytes are fetched and discarded, never skipped";
}

TEST(Decoder, MaskSurvivesDramRoundTrip)
{
    // The mask bytes the frame store writes to DRAM reconstruct the
    // original EncMask exactly (what the metadata scratchpad loads).
    DecoderRig rig(32, 16);
    const std::vector<RegionLabel> labels = {{3, 2, 20, 9, 2, 2, 0}};
    rig.push(rampFrame(32, 16), 0, labels);
    const StoredFrameAddrs *addrs = rig.store.recentAddrs(0);
    const EncodedFrame *frame = rig.store.recent(0);
    const std::vector<u8> bytes =
        rig.dram.read(addrs->mask.base, frame->mask.packedBytes());
    const EncMask reloaded(32, 16, bytes);
    EXPECT_EQ(reloaded, frame->mask);
    EXPECT_THROW(EncMask(32, 15, bytes), std::invalid_argument);
}

} // namespace
} // namespace rpx
