/** @file Unit tests for the encoded-frame history ring in DRAM. */

#include <gtest/gtest.h>

#include "core/encoder.hpp"
#include "core/frame_store.hpp"
#include "memory/dram.hpp"

namespace rpx {
namespace {

EncodedFrame
makeFrame(i32 w, i32 h, FrameIndex t, u8 value)
{
    Image img(w, h, PixelFormat::Gray8, value);
    RhythmicEncoder enc(w, h);
    enc.setRegionLabels({fullFrameRegion(w, h)});
    return enc.encodeFrame(img, t);
}

TEST(FrameStore, KeepsHistoryDepth)
{
    DramModel dram(1 << 24);
    FrameStore store(dram, 8, 8, /*history=*/4);
    for (FrameIndex t = 0; t < 6; ++t)
        store.store(makeFrame(8, 8, t, static_cast<u8>(t)));
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.recent(0)->index, 5);
    EXPECT_EQ(store.recent(3)->index, 2);
    EXPECT_EQ(store.recent(4), nullptr);
}

TEST(FrameStore, PixelsLandInDram)
{
    DramModel dram(1 << 24);
    FrameStore store(dram, 4, 4);
    store.store(makeFrame(4, 4, 0, 123));
    const StoredFrameAddrs *addrs = store.recentAddrs(0);
    ASSERT_NE(addrs, nullptr);
    for (u64 i = 0; i < 16; ++i)
        EXPECT_EQ(dram.peek(addrs->pixels.base + i), 123);
}

TEST(FrameStore, MetadataLandsInDram)
{
    DramModel dram(1 << 24);
    FrameStore store(dram, 4, 4);
    store.store(makeFrame(4, 4, 0, 9));
    const StoredFrameAddrs *addrs = store.recentAddrs(0);
    // Full-frame capture: every mask byte is 0b11111111 (four R codes).
    EXPECT_EQ(dram.peek(addrs->mask.base), 0xff);
    // Row offsets: row 1 starts at pixel 4 (little endian u32).
    EXPECT_EQ(dram.peek(addrs->offsets.base + 4), 4);
}

TEST(FrameStore, FootprintTracksEncodedSizes)
{
    DramModel dram(1 << 24);
    FrameStore store(dram, 16, 16, 2);
    store.store(makeFrame(16, 16, 0, 1));
    const Bytes one = store.pixelFootprint();
    EXPECT_EQ(one, 256u);
    store.store(makeFrame(16, 16, 1, 2));
    EXPECT_EQ(store.pixelFootprint(), 512u);
    // Eviction keeps the footprint bounded.
    store.store(makeFrame(16, 16, 2, 3));
    EXPECT_EQ(store.pixelFootprint(), 512u);
    EXPECT_GT(store.metadataFootprint(), 0u);
    EXPECT_EQ(store.totalFootprint(),
              store.pixelFootprint() + store.metadataFootprint());
}

TEST(FrameStore, BytesWrittenAccumulates)
{
    DramModel dram(1 << 24);
    FrameStore store(dram, 8, 8);
    store.store(makeFrame(8, 8, 0, 1));
    const Bytes after_one = store.bytesWritten();
    EXPECT_GT(after_one, 64u); // pixels + metadata
    store.store(makeFrame(8, 8, 1, 1));
    EXPECT_EQ(store.bytesWritten(), 2 * after_one);
}

TEST(FrameStore, RejectsGeometryMismatch)
{
    DramModel dram(1 << 24);
    FrameStore store(dram, 8, 8);
    EXPECT_THROW(store.store(makeFrame(4, 4, 0, 1)),
                 std::invalid_argument);
}

TEST(FrameStore, SlotRingReusesAddresses)
{
    DramModel dram(1 << 24);
    FrameStore store(dram, 8, 8, 2);
    store.store(makeFrame(8, 8, 0, 1));
    const u64 base0 = store.recentAddrs(0)->pixels.base;
    store.store(makeFrame(8, 8, 1, 2));
    store.store(makeFrame(8, 8, 2, 3)); // evicts frame 0, reuses its slot
    EXPECT_EQ(store.recentAddrs(0)->pixels.base, base0);
}

} // namespace
} // namespace rpx
