/**
 * @file
 * Decode-path identity suite (ISSUE 8), modeled on the ParallelEncoder
 * suite from ISSUE 4: the reference per-pixel walk, the vectorised
 * row-run fast path, and the band-parallel decoder must produce
 * byte-identical images (and matching history/black tallies) for every
 * comparison mode, thread count, awkward geometry, and SIMD level —
 * including the corruption-safe tryDecode path with quarantined frames.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/encoder.hpp"
#include "core/parallel_decoder.hpp"
#include "core/sw_decoder.hpp"
#include "frame/draw.hpp"

namespace rpx {
namespace {

Image
noiseFrame(i32 w, i32 h, u64 seed)
{
    Rng rng(seed);
    Image img(w, h);
    for (i32 y = 0; y < h; ++y)
        for (i32 x = 0; x < w; ++x)
            img.set(x, y, static_cast<u8>(rng.uniformInt(0, 255)));
    return img;
}

/** A varied, overlapping, y-sorted label list for a w x h frame. */
std::vector<RegionLabel>
scatterRegions(i32 w, i32 h, u64 seed, int count)
{
    Rng rng(seed);
    std::vector<RegionLabel> regions;
    for (int i = 0; i < count; ++i) {
        RegionLabel r;
        r.w = static_cast<i32>(rng.uniformInt(1, std::max<i64>(1, w / 2)));
        r.h = static_cast<i32>(rng.uniformInt(1, std::max<i64>(1, h / 2)));
        r.x = static_cast<i32>(rng.uniformInt(0, w - r.w));
        r.y = static_cast<i32>(rng.uniformInt(0, h - r.h));
        r.stride = static_cast<i32>(rng.uniformInt(1, 3));
        r.skip = static_cast<i32>(rng.uniformInt(1, 3));
        r.phase = static_cast<i32>(rng.uniformInt(0, r.skip - 1));
        regions.push_back(r);
    }
    sortRegionsByY(regions);
    return regions;
}

/** Encode a 4-frame rhythmic sequence; frames[0] is the newest. */
std::vector<EncodedFrame>
encodeSequence(i32 w, i32 h, ComparisonMode mode, u64 seed)
{
    RhythmicEncoder::Config cfg;
    cfg.mode = mode;
    RhythmicEncoder enc(w, h, cfg);
    enc.setRegionLabels(scatterRegions(w, h, seed, 12));
    std::vector<EncodedFrame> frames;
    for (FrameIndex t = 0; t < 4; ++t)
        frames.push_back(
            enc.encodeFrame(noiseFrame(w, h, seed + t), t));
    std::reverse(frames.begin(), frames.end());
    return frames;
}

std::vector<const EncodedFrame *>
historyOf(const std::vector<EncodedFrame> &frames)
{
    std::vector<const EncodedFrame *> history;
    for (size_t i = 1; i < frames.size(); ++i)
        history.push_back(&frames[i]);
    return history;
}

/**
 * The headline property: for every comparison mode, thread count, and
 * awkward geometry, the reference per-pixel walk, the serial fast path,
 * and the band-parallel decoder reconstruct byte-identical images with
 * matching fill tallies.
 */
TEST(ParallelDecoder, BitIdenticalToSerialAcrossModesAndThreads)
{
    const ComparisonMode modes[] = {ComparisonMode::Naive,
                                    ComparisonMode::RowSublist,
                                    ComparisonMode::Hybrid};
    const int thread_counts[] = {1, 2, 7};
    // Odd widths exercise mask rows that are not byte-aligned; odd heights
    // exercise a final band shorter than the others.
    const std::pair<i32, i32> geometries[] = {{57, 33}, {64, 47}, {31, 64}};

    for (const ComparisonMode mode : modes) {
        for (const auto &[w, h] : geometries) {
            const std::vector<EncodedFrame> frames =
                encodeSequence(w, h, mode, 0xD3u * static_cast<u64>(w + h));
            const std::vector<const EncodedFrame *> history =
                historyOf(frames);

            SoftwareDecoder::Config ref_cfg;
            ref_cfg.fast_path = false; // the per-pixel reference walk
            const SoftwareDecoder reference(ref_cfg);
            const Image want = reference.decode(frames[0], history);

            const SoftwareDecoder fast;
            EXPECT_EQ(fast.decode(frames[0], history).data(), want.data())
                << "fast path diverged at " << w << "x" << h;
            EXPECT_EQ(fast.lastHistoryFills(),
                      reference.lastHistoryFills());
            EXPECT_EQ(fast.lastBlackPixels(), reference.lastBlackPixels());

            for (const int threads : thread_counts) {
                ParallelDecoder::Config pcfg;
                pcfg.threads = threads;
                pcfg.min_band_rows = 4; // force many bands on small frames
                ParallelDecoder parallel(pcfg);
                Image got;
                parallel.decodeInto(frames[0], history, got);
                EXPECT_EQ(got.data(), want.data())
                    << "threads=" << threads << " at " << w << "x" << h;
                EXPECT_EQ(parallel.lastHistoryFills(),
                          reference.lastHistoryFills())
                    << "threads=" << threads;
                EXPECT_EQ(parallel.lastBlackPixels(),
                          reference.lastBlackPixels())
                    << "threads=" << threads;
            }
        }
    }
}

/** The identity holds at every SIMD level the host supports. */
TEST(ParallelDecoder, BitIdenticalAtEverySimdLevel)
{
    const std::vector<EncodedFrame> frames =
        encodeSequence(57, 33, ComparisonMode::Hybrid, 77);
    const std::vector<const EncodedFrame *> history = historyOf(frames);

    SoftwareDecoder::Config ref_cfg;
    ref_cfg.fast_path = false;
    const SoftwareDecoder reference(ref_cfg);
    const Image want = reference.decode(frames[0], history);

    for (const simd::Level level : simd::supportedLevels()) {
        ASSERT_TRUE(simd::setLevel(level));
        ParallelDecoder::Config pcfg;
        pcfg.threads = 2;
        pcfg.min_band_rows = 4;
        ParallelDecoder parallel(pcfg);
        Image got;
        parallel.decodeInto(frames[0], history, got);
        EXPECT_EQ(got.data(), want.data())
            << "level=" << simd::levelName(level);
    }
    simd::resetLevel();
}

/**
 * The corruption-safe path: a quarantined current frame leaves the
 * output untouched, unusable history frames are skipped and counted,
 * and the surviving decode is still byte-identical to serial — whether
 * the fan-out runs one band or many.
 */
TEST(ParallelDecoder, TryDecodeMatchesSerialWithQuarantinedFrames)
{
    const i32 w = 64, h = 47;
    std::vector<EncodedFrame> frames =
        encodeSequence(w, h, ComparisonMode::Hybrid, 13);

    // Corrupt one history frame (payload no longer matches the offsets)
    // and append a geometry mismatch; both must be skipped, not fatal.
    frames[2].pixels.resize(frames[2].pixels.size() / 2);
    const std::vector<EncodedFrame> other =
        encodeSequence(w + 8, h, ComparisonMode::Hybrid, 14);
    std::vector<const EncodedFrame *> history = historyOf(frames);
    history.push_back(&other[0]);

    const SoftwareDecoder serial;
    Image want;
    const SwDecodeStatus want_st =
        serial.tryDecode(frames[0], history, want);
    ASSERT_TRUE(want_st.ok);
    EXPECT_EQ(want_st.history_skipped, 2u);

    for (const int threads : {1, 2, 7}) {
        ParallelDecoder::Config pcfg;
        pcfg.threads = threads;
        pcfg.min_band_rows = 4;
        ParallelDecoder parallel(pcfg);
        Image got;
        const SwDecodeStatus st =
            parallel.tryDecode(frames[0], history, got);
        EXPECT_TRUE(st.ok) << "threads=" << threads;
        EXPECT_EQ(st.history_skipped, want_st.history_skipped);
        EXPECT_EQ(got.data(), want.data()) << "threads=" << threads;
        EXPECT_EQ(parallel.lastHistoryFills(),
                  serial.lastHistoryFills());
        EXPECT_EQ(parallel.lastBlackPixels(), serial.lastBlackPixels());

        // A corrupt *current* frame quarantines instead of decoding.
        EncodedFrame bad = frames[0];
        bad.pixels.resize(bad.pixels.size() / 2);
        Image untouched(3, 3, PixelFormat::Gray8, 200);
        const SwDecodeStatus bad_st =
            parallel.tryDecode(bad, history, untouched);
        EXPECT_FALSE(bad_st.ok);
        EXPECT_TRUE(bad_st.quarantined);
        EXPECT_FALSE(bad_st.reason.empty());
        EXPECT_EQ(untouched.at(1, 1), 200)
            << "quarantine must not touch the output image";
    }
}

TEST(ParallelDecoder, BandsAlignWithEncoderPartition)
{
    for (const i32 rows : {1, 3, 4, 16, 17, 33, 47, 480, 1080}) {
        for (const int bands : {1, 2, 3, 7, 16}) {
            const auto ranges = ParallelDecoder::partition(rows, bands, 4);
            ASSERT_FALSE(ranges.empty());
            i32 next = 0;
            for (const auto &[y0, y1] : ranges) {
                EXPECT_EQ(y0, next);
                EXPECT_LT(y0, y1);
                EXPECT_EQ(y0 % 4, 0);
                next = y1;
            }
            EXPECT_EQ(next, rows);
            EXPECT_LE(static_cast<int>(ranges.size()), bands);
        }
    }
}

TEST(ParallelDecoder, ZeroThreadsResolvesToHardwareConcurrency)
{
    ParallelDecoder::Config cfg;
    cfg.threads = 0;
    ParallelDecoder dec(cfg);
    EXPECT_GE(dec.threadCount(), 1);
}

TEST(ParallelDecoder, RejectsBadConfig)
{
    ParallelDecoder::Config cfg;
    cfg.threads = -1;
    EXPECT_THROW(ParallelDecoder{cfg}, std::invalid_argument);
    cfg.threads = 2;
    cfg.min_band_rows = 6; // not a multiple of 4
    EXPECT_THROW(ParallelDecoder{cfg}, std::invalid_argument);
    cfg.min_band_rows = 0;
    EXPECT_THROW(ParallelDecoder{cfg}, std::invalid_argument);
}

} // namespace
} // namespace rpx
