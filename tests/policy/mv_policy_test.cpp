/** @file Unit tests for the motion-vector region policy. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "frame/draw.hpp"
#include "policy/mv_policy.hpp"

namespace rpx {
namespace {

Image
sceneWithObject(i32 object_x, u64 seed)
{
    Image img(128, 96);
    Rng rng(seed);
    fillValueNoise(img, rng, 40.0, 90, 120);
    Image patch(20, 20);
    fillCheckerboard(patch, 4, 20, 235);
    blit(img, patch, object_x, 40);
    return img;
}

TEST(MvPolicy, ExtrapolatesRegionAlongMotion)
{
    MotionVectorPolicy policy(128, 96);
    policy.seedRegions({{28, 36, 30, 30, 1, 1, 0}});

    policy.observe(sceneWithObject(30, 7)); // baseline frame
    policy.observe(sceneWithObject(36, 7)); // object moved +6 px

    const auto regions = policy.regionsForNextFrame();
    ASSERT_EQ(regions.size(), 1u);
    // The region tracked the object rightward (margin also grows it).
    EXPECT_GT(regions[0].x + regions[0].w / 2, 43 + 2);
    EXPECT_GT(policy.sceneMotion(), 0.0);
}

TEST(MvPolicy, FastMotionMeansNoSkip)
{
    MotionVectorPolicy policy(128, 96);
    policy.seedRegions({{24, 36, 36, 30, 1, 3, 0}});
    policy.observe(sceneWithObject(30, 9));
    policy.observe(sceneWithObject(40, 9)); // 10 px/frame: fast
    const auto regions = policy.regionsForNextFrame();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].skip, 1);
}

TEST(MvPolicy, StaticSceneMaxSkip)
{
    MotionVectorPolicy policy(128, 96);
    policy.seedRegions({{28, 36, 30, 30, 1, 1, 0}});
    const Image frame = sceneWithObject(30, 11);
    policy.observe(frame);
    policy.observe(frame);
    const auto regions = policy.regionsForNextFrame();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].skip, 3);
}

TEST(MvPolicy, RegionsStayInsideFrame)
{
    MotionVectorPolicy policy(128, 96);
    policy.seedRegions({{100, 60, 28, 28, 1, 1, 0}});
    for (int i = 0; i < 6; ++i) {
        policy.observe(sceneWithObject(30 + 2 * i, 13));
        for (const auto &r : policy.regionsForNextFrame()) {
            EXPECT_GE(r.x, 0);
            EXPECT_GE(r.y, 0);
            EXPECT_LE(r.x + r.w, 128);
            EXPECT_LE(r.y + r.h, 96);
        }
    }
}

TEST(MvPolicy, FirstObservationIsBaselineOnly)
{
    MotionVectorPolicy policy(64, 64);
    policy.seedRegions({{10, 10, 20, 20, 1, 1, 0}});
    policy.observe(Image(64, 64, PixelFormat::Gray8, 100));
    EXPECT_DOUBLE_EQ(policy.sceneMotion(), 0.0);
    EXPECT_EQ(policy.regionsForNextFrame()[0].x, 10);
}

TEST(MvPolicy, Validation)
{
    EXPECT_THROW(MotionVectorPolicy(0, 10), std::invalid_argument);
    MotionVectorPolicy policy(64, 64);
    EXPECT_THROW(policy.observe(Image(32, 32)), std::invalid_argument);
}

} // namespace
} // namespace rpx
