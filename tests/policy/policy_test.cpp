/** @file Unit tests for region-selection policies and the Kalman filter. */

#include <cmath>

#include <gtest/gtest.h>

#include "policy/box_policy.hpp"
#include "policy/cycle_policy.hpp"
#include "policy/feature_policy.hpp"
#include "policy/kalman.hpp"

namespace rpx {
namespace {

OrbFeature
featureAt(double x, double y, float size, int octave, u8 tag)
{
    OrbFeature f;
    f.x = x;
    f.y = y;
    f.size = size;
    f.octave = octave;
    for (size_t i = 0; i < f.descriptor.size(); ++i)
        f.descriptor[i] = static_cast<u8>(tag * 31 + i * 7);
    return f;
}

TEST(CyclePolicy, FullCaptureOnBoundaries)
{
    CyclePolicy policy(100, 100, 10);
    EXPECT_TRUE(policy.isFullCapture(0));
    EXPECT_FALSE(policy.isFullCapture(5));
    EXPECT_TRUE(policy.isFullCapture(10));
    policy.setTrackedRegions({{5, 5, 10, 10, 1, 1, 0}});
    EXPECT_EQ(policy.regionsFor(0).size(), 1u);
    EXPECT_EQ(policy.regionsFor(0)[0], fullFrameRegion(100, 100));
    EXPECT_EQ(policy.regionsFor(3)[0].w, 10);
}

TEST(CyclePolicy, FallsBackToFullFrameWithoutProposals)
{
    CyclePolicy policy(64, 64, 5);
    EXPECT_EQ(policy.regionsFor(2)[0], fullFrameRegion(64, 64));
}

TEST(CyclePolicy, RejectsBadCycle)
{
    EXPECT_THROW(CyclePolicy(64, 64, 0), std::invalid_argument);
}

TEST(FeaturePolicy, SizeDrivesRegionExtent)
{
    FeaturePolicy policy(640, 480);
    policy.observe({featureAt(100, 100, 24.0f, 0, 1)});
    const auto regions = policy.regionsForNextFrame();
    ASSERT_EQ(regions.size(), 1u);
    // 24 * 1.6 margin = 38.
    EXPECT_NEAR(regions[0].w, 38, 1);
    EXPECT_EQ(regions[0].stride, 1); // octave 0 -> full density
    EXPECT_EQ(regions[0].skip, 1);   // unknown motion -> conservative
    // Centered on the feature.
    EXPECT_NEAR(regions[0].x + regions[0].w / 2, 100, 2);
}

TEST(FeaturePolicy, OctaveDrivesStride)
{
    FeaturePolicy policy(640, 480);
    EXPECT_EQ(policy.strideFor(featureAt(0, 0, 10, 0, 1)), 1);
    EXPECT_EQ(policy.strideFor(featureAt(0, 0, 10, 2, 1)), 3);
    EXPECT_EQ(policy.strideFor(featureAt(0, 0, 10, 9, 1)), 4); // capped
}

TEST(FeaturePolicy, DisplacementDrivesSkip)
{
    FeaturePolicy policy(640, 480);
    EXPECT_EQ(policy.skipFor(-1.0), 1);   // unknown
    EXPECT_EQ(policy.skipFor(10.0), 1);   // fast
    EXPECT_EQ(policy.skipFor(0.5), 3);    // static -> max skip
    const int mid = policy.skipFor(3.5);
    EXPECT_GE(mid, 1);
    EXPECT_LE(mid, 3);
}

TEST(FeaturePolicy, TracksDisplacementAcrossObservations)
{
    FeaturePolicy policy(640, 480);
    policy.observe({featureAt(100, 100, 20, 0, 5)});
    // Same descriptor, moved 8 px: fast motion -> skip 1.
    policy.observe({featureAt(108, 100, 20, 0, 5)});
    const auto regions = policy.regionsForNextFrame();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].skip, 1);

    // Static feature across frames -> maximum skip.
    FeaturePolicy lazy(640, 480);
    lazy.observe({featureAt(200, 200, 20, 0, 6)});
    lazy.observe({featureAt(200.4, 200, 20, 0, 6)});
    EXPECT_EQ(lazy.regionsForNextFrame()[0].skip, 3);
}

TEST(FeaturePolicy, OutputIsSortedAndClipped)
{
    FeaturePolicy policy(200, 200);
    policy.observe({
        featureAt(195, 150, 30, 0, 1),
        featureAt(5, 5, 30, 0, 2),
        featureAt(100, 195, 30, 0, 3),
    });
    const auto regions = policy.regionsForNextFrame();
    EXPECT_TRUE(regionsSortedByY(regions));
    for (const auto &r : regions) {
        EXPECT_GE(r.x, 0);
        EXPECT_GE(r.y, 0);
        EXPECT_LE(r.x + r.w, 200);
        EXPECT_LE(r.y + r.h, 200);
    }
}

TEST(Kalman2D, ConvergesToConstantVelocity)
{
    Kalman2D kf(0.0, 0.0);
    for (int t = 1; t <= 30; ++t) {
        kf.predict();
        kf.update(3.0 * t, -1.0 * t);
    }
    EXPECT_NEAR(kf.vx(), 3.0, 0.3);
    EXPECT_NEAR(kf.vy(), -1.0, 0.3);
    EXPECT_NEAR(kf.speed(), std::sqrt(10.0), 0.4);
    // Prediction continues the motion.
    const auto p = kf.predict();
    EXPECT_NEAR(p[0], 3.0 * 31, 1.5);
}

TEST(Kalman2D, UncertaintyShrinksWithUpdates)
{
    Kalman2D kf(10.0, 10.0);
    const double before = kf.positionUncertainty();
    for (int i = 0; i < 5; ++i) {
        kf.predict();
        kf.update(10.0, 10.0);
    }
    EXPECT_LT(kf.positionUncertainty(), before);
}

TEST(BoxPolicy, TracksAndPredictsMovingBox)
{
    BoxPolicy policy(640, 480);
    for (int t = 0; t < 8; ++t)
        policy.observe({Rect{100 + 6 * t, 200, 40, 40}});
    EXPECT_EQ(policy.trackCount(), 1u);
    const auto regions = policy.regionsForNextFrame();
    ASSERT_EQ(regions.size(), 1u);
    // Fast horizontal motion: skip 1, region leads the box.
    EXPECT_EQ(regions[0].skip, 1);
    EXPECT_GT(regions[0].x + regions[0].w / 2, 130);
}

TEST(BoxPolicy, StaticBoxGetsMaxSkip)
{
    BoxPolicy policy(640, 480);
    for (int t = 0; t < 8; ++t)
        policy.observe({Rect{300, 200, 40, 40}});
    const auto regions = policy.regionsForNextFrame();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].skip, 3);
}

TEST(BoxPolicy, DropsStaleTracks)
{
    BoxPolicy policy(640, 480);
    policy.observe({Rect{100, 100, 30, 30}});
    EXPECT_EQ(policy.trackCount(), 1u);
    for (int i = 0; i < 5; ++i)
        policy.observe({});
    EXPECT_EQ(policy.trackCount(), 0u);
}

TEST(BoxPolicy, SeparateTracksForSeparateObjects)
{
    BoxPolicy policy(640, 480);
    for (int t = 0; t < 4; ++t)
        policy.observe({Rect{100, 100, 30, 30}, Rect{400, 300, 50, 50}});
    EXPECT_EQ(policy.trackCount(), 2u);
    EXPECT_EQ(policy.regionsForNextFrame().size(), 2u);
}

TEST(BoxPolicy, StrideGrowsWithBoxSize)
{
    BoxPolicy policy(1920, 1080);
    for (int t = 0; t < 3; ++t)
        policy.observe({Rect{100, 100, 30, 30}, Rect{600, 300, 300, 300}});
    const auto regions = policy.regionsForNextFrame();
    ASSERT_EQ(regions.size(), 2u);
    const auto &small = regions[0].w < regions[1].w ? regions[0]
                                                    : regions[1];
    const auto &large = regions[0].w < regions[1].w ? regions[1]
                                                    : regions[0];
    EXPECT_EQ(small.stride, 1);
    EXPECT_GT(large.stride, 1);
}

} // namespace
} // namespace rpx
