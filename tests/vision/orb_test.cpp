/** @file Unit tests for the pyramid and ORB features. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "frame/draw.hpp"
#include "vision/orb.hpp"

namespace rpx {
namespace {

Image
texturedScene(u64 seed)
{
    Image img(128, 96);
    Rng rng(seed);
    fillValueNoise(img, rng, 40.0, 80, 120);
    fillCheckerboard(img, 1, 0, 0); // no-op reset guard (keeps API covered)
    Rng rng2 = rng.fork(9);
    fillValueNoise(img, rng2, 50.0, 90, 130);
    Image patch(16, 16);
    fillCheckerboard(patch, 4, 30, 220);
    blit(img, patch, 30, 30);
    Image patch2(20, 20);
    fillCheckerboard(patch2, 5, 10, 240);
    blit(img, patch2, 80, 50);
    return img;
}

TEST(Pyramid, LevelGeometry)
{
    Image base(120, 90);
    PyramidOptions opts;
    opts.levels = 3;
    opts.scale_factor = 1.5;
    ImagePyramid pyr(base, opts);
    ASSERT_EQ(pyr.levels(), 3u);
    EXPECT_EQ(pyr.level(0).image.width(), 120);
    EXPECT_EQ(pyr.level(1).image.width(), 80);
    EXPECT_EQ(pyr.level(2).image.width(), 53);
    EXPECT_DOUBLE_EQ(pyr.level(0).scale, 1.0);
    EXPECT_NEAR(pyr.level(2).scale, 2.25, 1e-12);
}

TEST(Pyramid, StopsAtMinDimension)
{
    Image base(40, 40);
    PyramidOptions opts;
    opts.levels = 10;
    opts.min_dimension = 20;
    ImagePyramid pyr(base, opts);
    EXPECT_LT(pyr.levels(), 10u);
    for (size_t i = 0; i < pyr.levels(); ++i)
        EXPECT_GE(pyr.level(i).image.width(), 20);
}

TEST(Pyramid, ToBaseCoordinates)
{
    Image base(100, 100);
    PyramidOptions opts;
    opts.levels = 2;
    opts.scale_factor = 2.0;
    ImagePyramid pyr(base, opts);
    const Point p = pyr.toBase(1, 10, 20);
    EXPECT_EQ(p.x, 20);
    EXPECT_EQ(p.y, 40);
}

TEST(Pyramid, RejectsBadOptions)
{
    Image base(32, 32);
    PyramidOptions opts;
    opts.scale_factor = 1.0;
    EXPECT_THROW(ImagePyramid(base, opts), std::invalid_argument);
}

TEST(BoxBlur, SmoothsStep)
{
    Image img(9, 3, PixelFormat::Gray8, 0);
    fillRect(img, Rect{5, 0, 4, 3}, 90);
    const Image blurred = boxBlur3(img);
    // The step edge spreads: pixel left of the edge gains intensity.
    EXPECT_GT(blurred.at(4, 1), 0);
    EXPECT_LT(blurred.at(5, 1), 90);
}

TEST(Orb, DetectsFeaturesOnTexture)
{
    const auto features = detectOrb(texturedScene(3));
    EXPECT_GT(features.size(), 4u);
    for (const auto &f : features) {
        EXPECT_GE(f.x, 0.0);
        EXPECT_GE(f.y, 0.0);
        EXPECT_GT(f.size, 0.0f);
        EXPECT_GE(f.octave, 0);
    }
}

TEST(Orb, MaxFeaturesRespected)
{
    OrbOptions opts;
    opts.max_features = 5;
    const auto features = detectOrb(texturedScene(3), opts);
    EXPECT_LE(features.size(), 5u);
}

TEST(Orb, DescriptorsStableAcrossRuns)
{
    const auto a = detectOrb(texturedScene(3));
    const auto b = detectOrb(texturedScene(3));
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].descriptor, b[i].descriptor);
}

TEST(Orb, DescriptorsMatchAcrossSmallTranslation)
{
    // The same texture shifted by 2px should match with low Hamming
    // distance for most features.
    Image scene = texturedScene(5);
    Image shifted(scene.width(), scene.height());
    blit(shifted, scene, 2, 0);
    const auto fa = detectOrb(scene);
    const auto fb = detectOrb(shifted);
    ASSERT_FALSE(fa.empty());
    ASSERT_FALSE(fb.empty());
    int good = 0;
    for (const auto &a : fa) {
        int best = 257;
        for (const auto &b : fb)
            best = std::min(best, hammingDistance(a.descriptor,
                                                  b.descriptor));
        if (best <= 40)
            ++good;
    }
    EXPECT_GT(good, static_cast<int>(fa.size() / 3));
}

TEST(Orb, HammingDistanceBasics)
{
    Descriptor a{}, b{};
    EXPECT_EQ(hammingDistance(a, b), 0);
    b[0] = 0xff;
    EXPECT_EQ(hammingDistance(a, b), 8);
    for (auto &byte : b)
        byte = 0xff;
    EXPECT_EQ(hammingDistance(a, b), 256);
}

TEST(Orb, RejectsBadInput)
{
    Image rgb(32, 32, PixelFormat::Rgb8);
    EXPECT_THROW(detectOrb(rgb), std::invalid_argument);
    OrbOptions opts;
    opts.max_features = 0;
    Image gray(32, 32);
    EXPECT_THROW(detectOrb(gray, opts), std::invalid_argument);
}

} // namespace
} // namespace rpx
