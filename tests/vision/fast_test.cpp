/** @file Unit tests for the FAST corner detector. */

#include <algorithm>

#include <gtest/gtest.h>

#include "frame/draw.hpp"
#include "vision/fast.hpp"

namespace rpx {
namespace {

TEST(Fast, FlatImageHasNoCorners)
{
    Image img(32, 32, PixelFormat::Gray8, 128);
    EXPECT_TRUE(detectFast(img).empty());
}

TEST(Fast, BrightSquareCornersDetected)
{
    Image img(40, 40, PixelFormat::Gray8, 20);
    fillRect(img, Rect{10, 10, 16, 16}, 220);
    const auto corners = detectFast(img);
    ASSERT_FALSE(corners.empty());
    // Each detected corner should be near one of the square's corners.
    for (const auto &c : corners) {
        const bool near_corner =
            (std::abs(c.x - 10) <= 2 || std::abs(c.x - 25) <= 2) &&
            (std::abs(c.y - 10) <= 2 || std::abs(c.y - 25) <= 2);
        EXPECT_TRUE(near_corner) << c.x << "," << c.y;
    }
}

TEST(Fast, DarkCornerAlsoDetected)
{
    Image img(40, 40, PixelFormat::Gray8, 220);
    fillRect(img, Rect{12, 12, 12, 12}, 15);
    EXPECT_FALSE(detectFast(img).empty());
}

TEST(Fast, EdgesAreNotCorners)
{
    // A long straight vertical edge should trigger (far) fewer detections
    // than an actual corner pattern.
    Image img(40, 40, PixelFormat::Gray8, 20);
    fillRect(img, Rect{20, 0, 20, 40}, 220);
    const auto corners = detectFast(img);
    EXPECT_LE(corners.size(), 2u);
}

TEST(Fast, ThresholdControlsSensitivity)
{
    Image img(40, 40, PixelFormat::Gray8, 100);
    fillRect(img, Rect{15, 15, 10, 10}, 130); // weak 30-level corner
    FastOptions lo;
    lo.threshold = 12;
    FastOptions hi;
    hi.threshold = 60;
    EXPECT_FALSE(detectFast(img, lo).empty());
    EXPECT_TRUE(detectFast(img, hi).empty());
}

TEST(Fast, NonmaxReducesDuplicates)
{
    // High-frequency noise fires clusters of adjacent segment-test hits;
    // non-maximum suppression must thin them.
    Image img(64, 64);
    Rng rng(12);
    fillValueNoise(img, rng, 3.0, 0, 255);
    FastOptions with;
    with.threshold = 12;
    FastOptions without = with;
    without.nonmax = false;
    const auto a = detectFast(img, with);
    const auto b = detectFast(img, without);
    ASSERT_FALSE(a.empty());
    EXPECT_LT(a.size(), b.size());
}

TEST(Fast, BorderRespected)
{
    Image img(16, 16, PixelFormat::Gray8, 0);
    fillRect(img, Rect{0, 0, 3, 3}, 255);
    for (const auto &c : detectFast(img)) {
        EXPECT_GE(c.x, 3);
        EXPECT_GE(c.y, 3);
        EXPECT_LT(c.x, 13);
        EXPECT_LT(c.y, 13);
    }
}

TEST(Fast, OptionValidation)
{
    Image img(16, 16);
    FastOptions bad;
    bad.threshold = 0;
    EXPECT_THROW(detectFast(img, bad), std::invalid_argument);
    bad.threshold = 10;
    bad.arc_length = 17;
    EXPECT_THROW(detectFast(img, bad), std::invalid_argument);
    Image rgb(8, 8, PixelFormat::Rgb8);
    EXPECT_THROW(detectFast(rgb), std::invalid_argument);
}

} // namespace
} // namespace rpx
