/** @file Unit tests for block-matching motion estimation. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "frame/draw.hpp"
#include "vision/motion.hpp"

namespace rpx {
namespace {

Image
texture(i32 w, i32 h, u64 seed)
{
    Image img(w, h);
    Rng rng(seed);
    fillValueNoise(img, rng, 6.0, 20, 230);
    return img;
}

/** Shift an image by (dx, dy), clamping at the borders. */
Image
shifted(const Image &src, i32 dx, i32 dy)
{
    Image out(src.width(), src.height());
    for (i32 y = 0; y < src.height(); ++y)
        for (i32 x = 0; x < src.width(); ++x)
            out.set(x, y, src.atClamped(x - dx, y - dy));
    return out;
}

TEST(Motion, StaticSceneHasZeroField)
{
    const Image a = texture(64, 64, 1);
    const auto field = estimateMotion(a, a);
    ASSERT_FALSE(field.empty());
    for (const auto &mv : field) {
        EXPECT_EQ(mv.dx, 0);
        EXPECT_EQ(mv.dy, 0);
    }
    EXPECT_DOUBLE_EQ(meanMotionMagnitude(field), 0.0);
}

class MotionShift : public ::testing::TestWithParam<std::pair<i32, i32>>
{
};

TEST_P(MotionShift, RecoversGlobalTranslation)
{
    const auto [dx, dy] = GetParam();
    const Image prev = texture(96, 96, 2);
    const Image cur = shifted(prev, dx, dy);
    const auto field = estimateMotion(prev, cur);
    const MotionVector dom = dominantMotion(field);
    EXPECT_EQ(dom.dx, dx);
    EXPECT_EQ(dom.dy, dy);
    EXPECT_NEAR(meanMotionMagnitude(field),
                std::sqrt(static_cast<double>(dx * dx + dy * dy)), 2.0);
}

INSTANTIATE_TEST_SUITE_P(Shifts, MotionShift,
                         ::testing::Values(std::pair{3, 0},
                                           std::pair{0, -4},
                                           std::pair{5, 5},
                                           std::pair{-6, 2},
                                           std::pair{-9, -7}));

TEST(Motion, TexturelessBlocksFlaggedUnreliable)
{
    Image flat(64, 64, PixelFormat::Gray8, 100);
    const auto field = estimateMotion(flat, flat);
    for (const auto &mv : field)
        EXPECT_TRUE(std::isinf(mv.sad));
    EXPECT_DOUBLE_EQ(meanMotionMagnitude(field), 0.0);
    EXPECT_EQ(dominantMotion(field).dx, 0);
}

TEST(Motion, LocalObjectMotionDetected)
{
    // Static textured background with one moving textured patch.
    Image prev = texture(128, 96, 3);
    Image cur = prev;
    Image patch(24, 24);
    fillCheckerboard(patch, 4, 10, 240);
    blit(prev, patch, 40, 40);
    blit(cur, patch, 46, 40); // moved +6 px in x

    const auto field = estimateMotion(prev, cur);
    bool found_motion = false;
    for (const auto &mv : field) {
        if (std::isinf(mv.sad))
            continue;
        const bool covers_patch =
            Rect{mv.block_x, mv.block_y, 16, 16}.overlaps(
                Rect{40, 40, 30, 24});
        if (covers_patch && mv.dx >= 4)
            found_motion = true;
        if (!covers_patch) {
            EXPECT_LE(std::abs(mv.dx), 1) << mv.block_x << ","
                                          << mv.block_y;
        }
    }
    EXPECT_TRUE(found_motion);
}

TEST(Motion, Validation)
{
    Image a(32, 32), b(16, 16);
    EXPECT_THROW(estimateMotion(a, b), std::invalid_argument);
    MotionOptions bad;
    bad.block_size = 2;
    EXPECT_THROW(estimateMotion(a, a, bad), std::invalid_argument);
    Image rgb(32, 32, PixelFormat::Rgb8);
    EXPECT_THROW(estimateMotion(rgb, rgb), std::invalid_argument);
}

} // namespace
} // namespace rpx
