/** @file Unit tests for IoU/mAP/PCK evaluation. */

#include <gtest/gtest.h>

#include "vision/eval.hpp"

namespace rpx {
namespace {

TEST(EvaluateFrame, PerfectDetections)
{
    const std::vector<Rect> gt{{10, 10, 20, 20}, {50, 50, 20, 20}};
    const std::vector<Detection> det{{gt[0], 0.9}, {gt[1], 0.8}};
    const FrameEval e = evaluateFrame(det, gt, 0.5);
    EXPECT_EQ(e.true_positives, 2);
    EXPECT_EQ(e.false_positives, 0);
    EXPECT_EQ(e.false_negatives, 0);
}

TEST(EvaluateFrame, MissAndFalseAlarm)
{
    const std::vector<Rect> gt{{10, 10, 20, 20}};
    const std::vector<Detection> det{{Rect{200, 200, 20, 20}, 0.9}};
    const FrameEval e = evaluateFrame(det, gt, 0.5);
    EXPECT_EQ(e.true_positives, 0);
    EXPECT_EQ(e.false_positives, 1);
    EXPECT_EQ(e.false_negatives, 1);
}

TEST(EvaluateFrame, GreedyClaimsByScore)
{
    // Two detections on the same ground truth: only the higher-scoring
    // one is a TP, the other becomes an FP.
    const std::vector<Rect> gt{{10, 10, 20, 20}};
    const std::vector<Detection> det{{Rect{11, 11, 20, 20}, 0.5},
                                     {Rect{10, 10, 20, 20}, 0.9}};
    const FrameEval e = evaluateFrame(det, gt, 0.5);
    EXPECT_EQ(e.true_positives, 1);
    EXPECT_EQ(e.false_positives, 1);
}

TEST(EvaluateFrame, ThresholdBoundary)
{
    const std::vector<Rect> gt{{0, 0, 10, 10}};
    // IoU exactly 1/3.
    const std::vector<Detection> det{{Rect{5, 0, 10, 10}, 1.0}};
    EXPECT_EQ(evaluateFrame(det, gt, 0.33).true_positives, 1);
    EXPECT_EQ(evaluateFrame(det, gt, 0.34).true_positives, 0);
}

TEST(EvaluateFrame, InvalidThresholdThrows)
{
    EXPECT_THROW(evaluateFrame({}, {}, 0.0), std::invalid_argument);
    EXPECT_THROW(evaluateFrame({}, {}, 1.1), std::invalid_argument);
}

TEST(Map, AccumulatesOverFrames)
{
    std::vector<FrameEval> frames;
    frames.push_back({3, 1, 0}); // 3 TP, 1 FP
    frames.push_back({1, 3, 2});
    // total TP=4, FP=4 -> 50%.
    EXPECT_DOUBLE_EQ(meanAveragePrecision(frames), 50.0);
    // recall: TP=4, FN=2 -> 66.7%.
    EXPECT_NEAR(recall(frames), 66.67, 0.01);
}

TEST(Map, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(meanAveragePrecision({}), 0.0);
    EXPECT_DOUBLE_EQ(recall({}), 0.0);
    EXPECT_DOUBLE_EQ(f1Score({}), 0.0);
}

TEST(F1, BalancesPrecisionAndRecall)
{
    std::vector<FrameEval> frames;
    frames.push_back({4, 0, 4}); // perfect precision, 50% recall
    // F1 = 2*4 / (2*4 + 0 + 4) = 66.7%.
    EXPECT_NEAR(f1Score(frames), 200.0 / 3.0, 1e-9);
    frames.clear();
    frames.push_back({4, 0, 0});
    EXPECT_DOUBLE_EQ(f1Score(frames), 100.0);
}

TEST(Pck, WithinRadiusCounts)
{
    std::vector<KeypointPair> pairs;
    pairs.push_back({10.0, 10.0, 11.0, 10.0, true, 10.0}); // dist 1 <= 2
    pairs.push_back({10.0, 10.0, 15.0, 10.0, true, 10.0}); // dist 5 > 2
    pairs.push_back({0.0, 0.0, 0.0, 0.0, false, 10.0});    // missing
    EXPECT_NEAR(pck(pairs, 0.2), 100.0 / 3.0, 1e-9);
}

TEST(Pck, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(pck({}), 0.0);
}

} // namespace
} // namespace rpx
