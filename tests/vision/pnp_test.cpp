/** @file Unit tests for the 3-D math and the Gauss-Newton PnP solver. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "vision/pnp.hpp"

namespace rpx {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Vec3, BasicOps)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_DOUBLE_EQ(a.dot(b), 32.0);
    const Vec3 c = a.cross(b);
    EXPECT_DOUBLE_EQ(c.x, -3.0);
    EXPECT_DOUBLE_EQ(c.y, 6.0);
    EXPECT_DOUBLE_EQ(c.z, -3.0);
    EXPECT_NEAR((a - a).norm(), 0.0, 1e-15);
    EXPECT_NEAR((Vec3{3, 4, 0}).norm(), 5.0, 1e-15);
}

TEST(Mat3, MultiplyAndTranspose)
{
    Mat3 rot = expSo3(Vec3{0, 0, kPi / 2});
    const Vec3 v = rot * Vec3{1, 0, 0};
    EXPECT_NEAR(v.x, 0.0, 1e-12);
    EXPECT_NEAR(v.y, 1.0, 1e-12);
    const Mat3 ident = rot * rot.transposed();
    EXPECT_NEAR(ident.trace(), 3.0, 1e-12);
}

TEST(So3, ExpLogRoundTrip)
{
    Rng rng(4);
    for (int i = 0; i < 20; ++i) {
        const Vec3 w{rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5),
                     rng.uniform(-1.5, 1.5)};
        const Vec3 back = logSo3(expSo3(w));
        EXPECT_NEAR(back.x, w.x, 1e-9);
        EXPECT_NEAR(back.y, w.y, 1e-9);
        EXPECT_NEAR(back.z, w.z, 1e-9);
    }
}

TEST(So3, IdentityMapsToZero)
{
    const Vec3 w = logSo3(Mat3::identity());
    EXPECT_NEAR(w.norm(), 0.0, 1e-15);
    EXPECT_NEAR(rotationAngle(Mat3::identity(), Mat3::identity()), 0.0,
                1e-15);
}

TEST(Pose, TransformInverseComposition)
{
    Pose pose;
    pose.rotation = expSo3(Vec3{0.1, -0.2, 0.3});
    pose.translation = {1.0, 2.0, 3.0};
    const Vec3 p{4.0, 5.0, 6.0};
    const Vec3 back = pose.inverse().transform(pose.transform(p));
    EXPECT_NEAR(back.x, p.x, 1e-12);
    EXPECT_NEAR(back.y, p.y, 1e-12);
    EXPECT_NEAR(back.z, p.z, 1e-12);

    const Pose ident = pose.compose(pose.inverse());
    EXPECT_NEAR(ident.translation.norm(), 0.0, 1e-12);
    EXPECT_NEAR(ident.rotation.trace(), 3.0, 1e-12);
}

TEST(Pose, CenterIsCameraPositionInWorld)
{
    const Vec3 eye{1.0, -2.0, 0.5};
    Pose pose;
    pose.rotation = expSo3(Vec3{0.0, 0.4, 0.0});
    pose.translation = pose.rotation * (eye * -1.0);
    const Vec3 c = pose.center();
    EXPECT_NEAR(c.x, eye.x, 1e-12);
    EXPECT_NEAR(c.y, eye.y, 1e-12);
    EXPECT_NEAR(c.z, eye.z, 1e-12);
}

TEST(Camera, ProjectionBasics)
{
    const CameraIntrinsics cam = CameraIntrinsics::forResolution(640, 480);
    EXPECT_DOUBLE_EQ(cam.cx, 320.0);
    EXPECT_DOUBLE_EQ(cam.cy, 240.0);
    const auto center = projectPoint(cam, Vec3{0, 0, 2});
    ASSERT_TRUE(center.has_value());
    EXPECT_DOUBLE_EQ((*center)[0], 320.0);
    EXPECT_DOUBLE_EQ((*center)[1], 240.0);
    EXPECT_FALSE(projectPoint(cam, Vec3{0, 0, -1}).has_value());
}

class PnpRecovery : public ::testing::TestWithParam<u64>
{
};

TEST_P(PnpRecovery, RecoversGroundTruthPoseFromNoisyStart)
{
    Rng rng(GetParam());
    const CameraIntrinsics cam = CameraIntrinsics::forResolution(640, 480);

    Pose gt;
    gt.rotation = expSo3(Vec3{rng.uniform(-0.2, 0.2),
                              rng.uniform(-0.2, 0.2),
                              rng.uniform(-0.2, 0.2)});
    gt.translation = {rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                      rng.uniform(-0.3, 0.3)};

    std::vector<Correspondence> points;
    for (int i = 0; i < 40; ++i) {
        const Vec3 world{rng.uniform(-2, 2), rng.uniform(-1.5, 1.5),
                         rng.uniform(3, 8)};
        const auto uv = projectPoint(cam, gt.transform(world));
        if (!uv)
            continue;
        points.push_back({world, (*uv)[0], (*uv)[1]});
    }
    ASSERT_GE(points.size(), 20u);

    // Start from a perturbed pose (tracking from the previous frame).
    Pose init = gt;
    init.translation = init.translation + Vec3{0.05, -0.04, 0.06};
    init.rotation = expSo3(Vec3{0.02, 0.02, -0.01}) * init.rotation;

    const PnpResult result = solvePnp(cam, points, init);
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.rms_reprojection_error, 0.5);
    EXPECT_NEAR((result.pose.center() - gt.center()).norm(), 0.0, 1e-3);
    EXPECT_LT(rotationAngle(result.pose.rotation, gt.rotation), 1e-3);
    EXPECT_EQ(result.inliers, static_cast<int>(points.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PnpRecovery,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Pnp, RobustToOutliers)
{
    Rng rng(9);
    const CameraIntrinsics cam = CameraIntrinsics::forResolution(640, 480);
    Pose gt;
    gt.translation = {0.1, -0.1, 0.2};

    std::vector<Correspondence> points;
    for (int i = 0; i < 60; ++i) {
        const Vec3 world{rng.uniform(-2, 2), rng.uniform(-1.5, 1.5),
                         rng.uniform(3, 8)};
        const auto uv = projectPoint(cam, gt.transform(world));
        if (!uv)
            continue;
        Correspondence c{world, (*uv)[0], (*uv)[1]};
        if (i % 10 == 0) { // 10% gross outliers
            c.u += rng.uniform(50, 120);
            c.v -= rng.uniform(50, 120);
        }
        points.push_back(c);
    }

    const PnpResult result = solvePnp(cam, points, Pose{});
    EXPECT_TRUE(result.converged);
    // Huber keeps the estimate close despite the outliers.
    EXPECT_LT((result.pose.center() - gt.center()).norm(), 0.05);
}

TEST(Pnp, RejectsTooFewPoints)
{
    const CameraIntrinsics cam;
    std::vector<Correspondence> three(3);
    EXPECT_THROW(solvePnp(cam, three, Pose{}), std::invalid_argument);
}

} // namespace
} // namespace rpx
