/** @file Unit tests for k-means clustering and multi-ROI rect merging. */

#include <gtest/gtest.h>

#include "vision/kmeans.hpp"

namespace rpx {
namespace {

TEST(KMeans, TwoObviousClusters)
{
    std::vector<Point> points;
    for (i32 i = 0; i < 10; ++i) {
        points.push_back({i % 3, i % 2});          // near origin
        points.push_back({100 + i % 3, 100 + i % 2}); // far corner
    }
    const KMeansResult result = kmeansPoints(points, 2, KMeansOptions{});
    ASSERT_EQ(result.centroids.size(), 2u);
    // Same-cluster points share assignments.
    for (size_t i = 2; i < points.size(); i += 2)
        EXPECT_EQ(result.assignment[i], result.assignment[0]);
    for (size_t i = 3; i < points.size(); i += 2)
        EXPECT_EQ(result.assignment[i], result.assignment[1]);
    EXPECT_NE(result.assignment[0], result.assignment[1]);
}

TEST(KMeans, KClampedToPointCount)
{
    const std::vector<Point> points{{0, 0}, {5, 5}};
    const KMeansResult result = kmeansPoints(points, 10, KMeansOptions{});
    EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(KMeans, EmptyInput)
{
    EXPECT_TRUE(kmeansPoints({}, 3, KMeansOptions{}).centroids.empty());
    EXPECT_TRUE(mergeRectsKMeans({}, 3).empty());
}

TEST(KMeans, DeterministicForSeed)
{
    std::vector<Point> points;
    for (i32 i = 0; i < 30; ++i)
        points.push_back({(i * 17) % 100, (i * 31) % 100});
    const auto a = kmeansPoints(points, 4, KMeansOptions{});
    const auto b = kmeansPoints(points, 4, KMeansOptions{});
    EXPECT_EQ(a.assignment, b.assignment);
}

TEST(MergeRects, FewRectsPassThrough)
{
    const std::vector<Rect> rects{{0, 0, 10, 10}, {50, 50, 10, 10}};
    EXPECT_EQ(mergeRectsKMeans(rects, 16), rects);
}

TEST(MergeRects, ReducesToBudget)
{
    // 100 small regions (the V-SLAM regime) must merge to <= 16 windows.
    std::vector<Rect> rects;
    for (int i = 0; i < 100; ++i)
        rects.push_back(
            {(i * 37) % 600, (i * 53) % 440, 20 + i % 9, 20 + i % 7});
    const auto merged = mergeRectsKMeans(rects, 16);
    EXPECT_LE(merged.size(), 16u);
    EXPECT_GE(merged.size(), 1u);
}

TEST(MergeRects, UnionCoversMembers)
{
    std::vector<Rect> rects;
    for (int i = 0; i < 40; ++i)
        rects.push_back({(i * 97) % 500, (i * 61) % 400, 15, 15});
    const auto merged = mergeRectsKMeans(rects, 4);
    for (const auto &r : rects) {
        bool covered = false;
        for (const auto &m : merged) {
            if (m.intersect(r) == r) {
                covered = true;
                break;
            }
        }
        EXPECT_TRUE(covered) << r;
    }
}

} // namespace
} // namespace rpx
