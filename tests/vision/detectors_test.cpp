/** @file Unit tests for the face detector and pose estimator. */

#include <gtest/gtest.h>

#include "datasets/face_dataset.hpp"
#include "datasets/pose_dataset.hpp"
#include "frame/draw.hpp"
#include "vision/eval.hpp"
#include "vision/face_detector.hpp"
#include "vision/integral.hpp"
#include "vision/pose_estimator.hpp"

namespace rpx {
namespace {

TEST(IntegralImage, BoxSums)
{
    Image img(4, 4);
    for (i32 y = 0; y < 4; ++y)
        for (i32 x = 0; x < 4; ++x)
            img.set(x, y, static_cast<u8>(x + 4 * y));
    const IntegralImage integral(img);
    EXPECT_EQ(integral.boxSum(Rect{0, 0, 4, 4}), 120u);
    EXPECT_EQ(integral.boxSum(Rect{1, 1, 2, 2}), 5u + 6u + 9u + 10u);
    EXPECT_DOUBLE_EQ(integral.boxMean(Rect{0, 0, 2, 1}), 0.5);
    // Clipping.
    EXPECT_EQ(integral.boxSum(Rect{-5, -5, 100, 100}), 120u);
    EXPECT_EQ(integral.boxSum(Rect{10, 10, 2, 2}), 0u);
}

TEST(FaceDetector, FindsFacesAtCorrectLocations)
{
    const FaceSequence seq;
    const FaceDetector detector;
    int checked = 0;
    for (int t : {10, 25, 40}) {
        const auto gt = seq.groundTruth(t);
        const auto det = detector.detect(seq.renderFrame(t));
        const FrameEval e = evaluateFrame(det, gt, 0.5);
        if (!gt.empty()) {
            EXPECT_GE(e.true_positives, static_cast<int>(gt.size()) - 1)
                << "frame " << t;
            ++checked;
        }
        EXPECT_LE(e.false_positives, 2) << "frame " << t;
    }
    EXPECT_GT(checked, 0);
}

TEST(FaceDetector, EmptySceneYieldsNothing)
{
    Image img(200, 200, PixelFormat::Gray8, 100);
    const FaceDetector detector;
    EXPECT_TRUE(detector.detect(img).empty());
}

TEST(FaceDetector, RejectsRgbInput)
{
    Image rgb(64, 64, PixelFormat::Rgb8);
    const FaceDetector detector;
    EXPECT_THROW(detector.detect(rgb), std::invalid_argument);
}

TEST(FaceDetector, BadOptionsThrow)
{
    FaceDetectorOptions opts;
    opts.scales.clear();
    EXPECT_THROW(FaceDetector{opts}, std::invalid_argument);
}

TEST(PoseEstimator, FindsJointBlobs)
{
    Image img(200, 200, PixelFormat::Gray8, 60);
    addGaussianBlob(img, 50.0, 50.0, 2.5, 150.0);
    addGaussianBlob(img, 120.0, 80.0, 2.5, 150.0);
    const PoseEstimator estimator;
    const auto kps = estimator.detect(img);
    ASSERT_EQ(kps.size(), 2u);
    // Keypoints localise within a few pixels.
    for (const auto &k : kps) {
        const bool near_a =
            std::abs(k.x - 50) <= 3 && std::abs(k.y - 50) <= 3;
        const bool near_b =
            std::abs(k.x - 120) <= 3 && std::abs(k.y - 80) <= 3;
        EXPECT_TRUE(near_a || near_b);
    }
}

TEST(PoseEstimator, IgnoresBlackBorderArtifacts)
{
    // A black (unsampled) band next to bright content must not produce
    // keypoints — the min_ring_mean gate.
    Image img(100, 100, PixelFormat::Gray8, 0);
    fillRect(img, Rect{40, 0, 60, 100}, 90);
    const PoseEstimator estimator;
    EXPECT_TRUE(estimator.detect(img).empty());
}

TEST(PoseEstimator, DetectsDatasetJoints)
{
    const PoseSequence seq;
    const PoseEstimator estimator;
    const int t = 20;
    const auto gt = seq.groundTruth(t);
    ASSERT_FALSE(gt.empty());
    const auto kps = estimator.detect(seq.renderFrame(t));
    // Most joints of each person produce a keypoint within 6 px.
    int found = 0, total = 0;
    for (const auto &person : gt) {
        for (const auto &j : person.joints) {
            ++total;
            for (const auto &k : kps) {
                const double dx = k.x - j.x, dy = k.y - j.y;
                if (dx * dx + dy * dy <= 36.0) {
                    ++found;
                    break;
                }
            }
        }
    }
    EXPECT_GT(found, total * 2 / 3);
}

TEST(PoseEstimator, KeypointsToDetections)
{
    const std::vector<Keypoint> kps{{10.0, 20.0, 5.0}};
    const auto det = PoseEstimator::keypointsToDetections(kps, 8);
    ASSERT_EQ(det.size(), 1u);
    EXPECT_EQ(det[0].box, (Rect{6, 16, 8, 8}));
    EXPECT_DOUBLE_EQ(det[0].score, 5.0);
}

TEST(PoseEstimator, BadOptionsThrow)
{
    PoseEstimatorOptions opts;
    opts.outer = opts.inner;
    EXPECT_THROW(PoseEstimator{opts}, std::invalid_argument);
}

} // namespace
} // namespace rpx
