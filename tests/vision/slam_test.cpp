/** @file Unit tests for the SLAM tracker and trajectory metrics. */

#include <gtest/gtest.h>

#include "datasets/slam_dataset.hpp"
#include "vision/slam.hpp"

namespace rpx {
namespace {

SlamSequenceConfig
tinySequence()
{
    SlamSequenceConfig cfg;
    cfg.width = 320;
    cfg.height = 240;
    cfg.frames = 10;
    cfg.landmarks = 150;
    cfg.motion_amplitude = 0.3;
    return cfg;
}

TEST(SlamTracker, BuildsMapFromBootstrapFrame)
{
    const SlamSequence seq(tinySequence());
    SlamConfig cfg;
    cfg.camera = seq.camera();
    SlamTracker tracker(cfg);
    const size_t mapped = tracker.buildMap(
        seq.renderFrame(0), seq.groundTruth()[0],
        seq.landmarkPositions());
    EXPECT_GT(mapped, 10u);
    EXPECT_EQ(tracker.map().size(), mapped);
}

TEST(SlamTracker, TracksSmoothMotion)
{
    const SlamSequence seq(tinySequence());
    SlamConfig cfg;
    cfg.camera = seq.camera();
    SlamTracker tracker(cfg);
    tracker.buildMap(seq.renderFrame(0), seq.groundTruth()[0],
                     seq.landmarkPositions());

    int tracked = 0;
    std::vector<Pose> est{seq.groundTruth()[0]};
    for (int t = 1; t < seq.frames(); ++t) {
        const TrackResult r = tracker.track(seq.renderFrame(t));
        est.push_back(r.pose);
        tracked += r.tracked ? 1 : 0;
    }
    EXPECT_GE(tracked, seq.frames() - 2);

    const TrajectoryMetrics m =
        computeTrajectoryMetrics(seq.groundTruth(), est);
    // Full-resolution tracking should be accurate to centimetres.
    EXPECT_LT(m.ate_mean, 0.12);
    EXPECT_GT(m.frames, 0u);
}

TEST(SlamTracker, NoMapMeansNoTracking)
{
    const SlamSequence seq(tinySequence());
    SlamConfig cfg;
    cfg.camera = seq.camera();
    SlamTracker tracker(cfg);
    const TrackResult r = tracker.track(seq.renderFrame(1));
    EXPECT_FALSE(r.tracked);
    EXPECT_EQ(r.matches, 0);
}

TEST(SlamTracker, RejectsSillyConfig)
{
    SlamConfig cfg;
    cfg.min_matches = 2;
    EXPECT_THROW(SlamTracker{cfg}, std::invalid_argument);
}

TEST(TrajectoryMetrics, ZeroForIdenticalTrajectories)
{
    const SlamSequence seq(tinySequence());
    const auto &gt = seq.groundTruth();
    const TrajectoryMetrics m = computeTrajectoryMetrics(gt, gt);
    EXPECT_NEAR(m.ate_mean, 0.0, 1e-12);
    EXPECT_NEAR(m.rpe_trans_mean, 0.0, 1e-12);
    EXPECT_NEAR(m.rpe_rot_mean_deg, 0.0, 1e-9);
}

TEST(TrajectoryMetrics, KnownOffset)
{
    std::vector<Pose> gt(5), est(5);
    for (size_t i = 0; i < 5; ++i) {
        gt[i].translation = {0.0, 0.0, static_cast<double>(i)};
        est[i].translation = {0.1, 0.0, static_cast<double>(i)};
    }
    const TrajectoryMetrics m = computeTrajectoryMetrics(gt, est);
    // Constant offset: ATE = 0.1 everywhere, RPE = 0 (relative motion
    // identical).
    EXPECT_NEAR(m.ate_mean, 0.1, 1e-12);
    EXPECT_NEAR(m.ate_stddev, 0.0, 1e-12);
    EXPECT_NEAR(m.rpe_trans_mean, 0.0, 1e-12);
}

TEST(TrajectoryMetrics, MismatchedLengthsThrow)
{
    std::vector<Pose> a(3), b(4);
    EXPECT_THROW(computeTrajectoryMetrics(a, b), std::invalid_argument);
    EXPECT_THROW(computeTrajectoryMetrics(a, a, 0),
                 std::invalid_argument);
}

} // namespace
} // namespace rpx
