/** @file Unit tests for the brute-force descriptor matcher. */

#include <gtest/gtest.h>

#include "vision/matcher.hpp"

namespace rpx {
namespace {

Descriptor
pattern(u8 seed)
{
    Descriptor d{};
    for (size_t i = 0; i < d.size(); ++i)
        d[i] = static_cast<u8>(seed * 37 + i * 11);
    return d;
}

/** Flip `bits` low bits of a descriptor. */
Descriptor
corrupt(Descriptor d, int bits)
{
    for (int i = 0; i < bits; ++i)
        d[static_cast<size_t>(i / 8)] ^= static_cast<u8>(1u << (i % 8));
    return d;
}

TEST(Matcher, ExactMatches)
{
    const std::vector<Descriptor> train{pattern(1), pattern(2),
                                        pattern(3)};
    const std::vector<Descriptor> query{pattern(2)};
    const auto matches = matchDescriptors(query, train);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].train_index, 1u);
    EXPECT_EQ(matches[0].distance, 0);
}

TEST(Matcher, MaxDistanceRejects)
{
    const std::vector<Descriptor> train{pattern(1)};
    const std::vector<Descriptor> query{corrupt(pattern(1), 100)};
    MatchOptions opts;
    opts.max_distance = 50;
    opts.ratio = 0.0;
    EXPECT_TRUE(matchDescriptors(query, train, opts).empty());
    opts.max_distance = 128;
    EXPECT_EQ(matchDescriptors(query, train, opts).size(), 1u);
}

TEST(Matcher, RatioTestRejectsAmbiguous)
{
    // Two near-identical train entries make the best/second-best ratio
    // approach 1 and fail Lowe's test.
    const Descriptor base = pattern(7);
    const std::vector<Descriptor> train{corrupt(base, 4),
                                        corrupt(base, 5)};
    const std::vector<Descriptor> query{base};
    MatchOptions opts;
    opts.ratio = 0.8;
    opts.cross_check = false;
    EXPECT_TRUE(matchDescriptors(query, train, opts).empty());
    opts.ratio = 0.0; // disabled
    EXPECT_EQ(matchDescriptors(query, train, opts).size(), 1u);
}

TEST(Matcher, CrossCheckRequiresMutual)
{
    // q0 is closest to t0, but t0 is closer to q1: cross-check kills q0.
    const Descriptor t0 = pattern(9);
    const std::vector<Descriptor> train{t0};
    const std::vector<Descriptor> query{corrupt(t0, 6), corrupt(t0, 2)};
    MatchOptions opts;
    opts.ratio = 0.0;
    const auto matches = matchDescriptors(query, train, opts);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0].query_index, 1u);
}

TEST(Matcher, EmptyInputs)
{
    EXPECT_TRUE(matchDescriptors({}, {pattern(1)}).empty());
    EXPECT_TRUE(matchDescriptors({pattern(1)}, {}).empty());
}

TEST(Matcher, DescriptorsOfExtracts)
{
    std::vector<OrbFeature> features(2);
    features[0].descriptor = pattern(1);
    features[1].descriptor = pattern(2);
    const auto d = descriptorsOf(features);
    ASSERT_EQ(d.size(), 2u);
    EXPECT_EQ(d[0], pattern(1));
    EXPECT_EQ(d[1], pattern(2));
}

TEST(Matcher, ManyToManyConsistency)
{
    std::vector<Descriptor> train;
    for (u8 i = 0; i < 20; ++i)
        train.push_back(pattern(i));
    std::vector<Descriptor> query;
    for (u8 i = 0; i < 20; ++i)
        query.push_back(corrupt(pattern(i), 1));
    const auto matches = matchDescriptors(query, train);
    EXPECT_GT(matches.size(), 15u);
    for (const auto &m : matches)
        EXPECT_EQ(m.query_index, m.train_index);
}

} // namespace
} // namespace rpx
