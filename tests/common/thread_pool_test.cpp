/** @file Unit tests for the persistent worker pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace rpx {
namespace {

TEST(ThreadPool, RunsEveryJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 1000; ++i)
        futures.push_back(pool.submit([&ran] { ++ran; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(ran.load(), 1000);
}

TEST(ThreadPool, FuturePropagatesJobException)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { throw std::runtime_error("worker boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
    // The pool survives a throwing job and keeps serving.
    auto ok = pool.submit([] {});
    EXPECT_NO_THROW(ok.get());
}

TEST(ThreadPool, JobsRunConcurrently)
{
    // Two jobs that each wait for the other to start can only both finish
    // if two workers run them at the same time.
    ThreadPool pool(2);
    std::atomic<int> started{0};
    auto rendezvous = [&started] {
        ++started;
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (started.load() < 2 &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::yield();
    };
    auto a = pool.submit(rendezvous);
    auto b = pool.submit(rendezvous);
    a.get();
    b.get();
    EXPECT_EQ(started.load(), 2);
}

TEST(ThreadPool, DestructorDrainsPendingJobs)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&ran] { ++ran; });
        // Destructor joins after finishing the queue.
    }
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, RejectsInvalidThreadCount)
{
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
    EXPECT_THROW(ThreadPool(-3), std::invalid_argument);
}

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

} // namespace
} // namespace rpx
