/**
 * @file
 * rpx::json reader: value model, parser edge cases, JSONL, escaping.
 * Every machine-readable obs format (metric snapshots, telemetry
 * journals, bench reports) flows through this parser on the way back in,
 * so the error surface is pinned down as tightly as the happy path.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "common/json.hpp"

namespace rpx::json {
namespace {

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_EQ(parse("true").boolean(), true);
    EXPECT_EQ(parse("false").boolean(), false);
    EXPECT_DOUBLE_EQ(parse("0").number(), 0.0);
    EXPECT_DOUBLE_EQ(parse("-17").number(), -17.0);
    EXPECT_DOUBLE_EQ(parse("3.5e2").number(), 350.0);
    EXPECT_EQ(parse("\"hi\"").str(), "hi");
    EXPECT_EQ(parse("  \"ws\"  ").str(), "ws");
}

TEST(JsonParse, StringEscapes)
{
    EXPECT_EQ(parse("\"a\\\"b\"").str(), "a\"b");
    EXPECT_EQ(parse("\"line\\nbreak\\ttab\"").str(), "line\nbreak\ttab");
    EXPECT_EQ(parse("\"back\\\\slash\"").str(), "back\\slash");
    EXPECT_EQ(parse("\"\\u0041\"").str(), "A");
}

TEST(JsonParse, ArraysAndObjects)
{
    const Value v = parse(R"({"a": [1, 2, 3], "b": {"c": "d"}, "n": null})");
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.at("a").array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("a").array()[2].number(), 3.0);
    EXPECT_EQ(v.at("b").at("c").str(), "d");
    EXPECT_TRUE(v.at("n").isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(v.numberOr("missing", 42.0), 42.0);
    EXPECT_EQ(v.stringOr("missing", "dflt"), "dflt");
}

TEST(JsonParse, MalformedInputThrows)
{
    EXPECT_THROW(parse(""), std::runtime_error);
    EXPECT_THROW(parse("{"), std::runtime_error);
    EXPECT_THROW(parse("[1,]"), std::runtime_error);
    EXPECT_THROW(parse("{\"a\":}"), std::runtime_error);
    EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(parse("tru"), std::runtime_error);
    EXPECT_THROW(parse("1 2"), std::runtime_error); // trailing garbage
}

TEST(JsonParse, KindMismatchThrows)
{
    const Value v = parse(R"({"a": 1})");
    EXPECT_THROW(v.str(), std::runtime_error);
    EXPECT_THROW(v.at("a").str(), std::runtime_error);
    EXPECT_THROW(v.at("missing"), std::runtime_error);
    EXPECT_DOUBLE_EQ(v.at("a").number(), 1.0);
}

TEST(JsonParseLines, SkipsBlanksAndReportsLineNumbers)
{
    const auto values = parseLines("{\"a\":1}\n\n  \n{\"a\":2}\n");
    ASSERT_EQ(values.size(), 2u);
    EXPECT_DOUBLE_EQ(values[1].at("a").number(), 2.0);

    try {
        parseLines("{\"ok\":1}\n{broken\n");
        FAIL() << "expected malformed line to throw";
    } catch (const std::runtime_error &e) {
        // The 1-based line number of the bad line must be in the message.
        EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
    }
}

TEST(JsonEscape, RoundTripsThroughParse)
{
    const std::string nasty = "q\"uote \\ back\nnew\ttab\x01了";
    const Value v = parse("\"" + escape(nasty) + "\"");
    EXPECT_EQ(v.str(), nasty);
}

} // namespace
} // namespace rpx::json
