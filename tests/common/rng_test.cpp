/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace rpx {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const i64 v = rng.uniformInt(5, 8);
        EXPECT_GE(v, 5);
        EXPECT_LE(v, 8);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(4, 4), 4);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(123);
    const int n = 50000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaled)
{
    Rng rng(5);
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(77);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ForkIsStableAndDecorrelated)
{
    const Rng base(99);
    Rng f1 = base.fork(1);
    Rng f1_again = base.fork(1);
    Rng f2 = base.fork(2);
    EXPECT_EQ(f1.next(), f1_again.next());
    // Different labels produce different streams.
    Rng g1 = base.fork(1);
    Rng g2 = base.fork(2);
    (void)f2;
    int same = 0;
    for (int i = 0; i < 32; ++i)
        if (g1.next() == g2.next())
            ++same;
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace rpx
