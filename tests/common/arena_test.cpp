/**
 * @file
 * FrameArena retention semantics: capacity is kept across leases (the
 * zero-allocation steady-state contract), the high-water gauge tracks the
 * true peak, and trim() bounds retention so churny owners with shrinking
 * geometry cannot pin their largest-ever footprint forever.
 */

#include <gtest/gtest.h>

#include "common/arena.hpp"

namespace rpx {
namespace {

TEST(Arena, RetainsCapacityAcrossLeases)
{
    FrameArena arena;
    std::vector<u8> &big = arena.bytes(0, 4096);
    const u8 *data = big.data();
    EXPECT_GE(arena.retainedBytes(), 4096u);
    // Re-leasing smaller keeps the capacity and the storage.
    std::vector<u8> &small = arena.bytes(0, 16);
    EXPECT_EQ(small.data(), data);
    EXPECT_GE(arena.retainedBytes(), 4096u);
}

TEST(Arena, HighWaterTracksPeakAcrossShrinkAndClear)
{
    FrameArena arena;
    arena.bytes(0, 1 << 16);
    arena.words(0, 1 << 10);
    const size_t peak = arena.retainedBytes();
    EXPECT_GE(peak, (1u << 16) + (1u << 10) * sizeof(u32));
    EXPECT_EQ(arena.highWaterBytes(), peak);

    arena.clear();
    EXPECT_EQ(arena.retainedBytes(), 0u);
    EXPECT_EQ(arena.highWaterBytes(), peak);

    // Smaller re-leases never move the high-water mark down.
    arena.bytes(0, 64);
    EXPECT_EQ(arena.highWaterBytes(), peak);
}

TEST(Arena, TrimBoundsRetention)
{
    FrameArena arena;
    arena.bytes(0, 1 << 20);
    arena.bytes(1, 1 << 18);
    arena.words(0, 1 << 12);
    ASSERT_GT(arena.retainedBytes(), size_t{1} << 20);

    // Under the bound: no-op.
    EXPECT_FALSE(arena.trim(size_t{8} << 20));
    EXPECT_GT(arena.retainedBytes(), size_t{1} << 20);

    // Over the bound: all backing storage released.
    EXPECT_TRUE(arena.trim(1 << 16));
    EXPECT_EQ(arena.retainedBytes(), 0u);

    // The pool re-warms on the next lease and trim keeps bounding it.
    arena.bytes(0, 1 << 20);
    EXPECT_GE(arena.retainedBytes(), size_t{1} << 20);
    EXPECT_TRUE(arena.trim(1 << 16));
    EXPECT_EQ(arena.retainedBytes(), 0u);
}

TEST(Arena, ChurnWithBoundStaysBounded)
{
    // The many-stream churn shape: geometries vary lease to lease; with a
    // bound applied after each frame, retention never exceeds
    // bound + one frame's worth of growth.
    FrameArena arena;
    const size_t bound = 1 << 16;
    for (int gen = 0; gen < 200; ++gen) {
        const size_t size = 1u << (10 + gen % 9); // 1 KiB .. 256 KiB
        arena.bytes(0, size);
        arena.bytes(1, size / 2);
        arena.trim(bound);
        EXPECT_LE(arena.retainedBytes(), bound) << "gen " << gen;
    }
    EXPECT_GE(arena.highWaterBytes(), (1u << 18) + (1u << 17));
}

} // namespace
} // namespace rpx
