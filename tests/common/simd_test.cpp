/**
 * @file
 * SIMD dispatch-shim tests: every kernel must be bit-identical to the
 * scalar reference at every supported level, including unaligned start
 * indices and awkward tail lengths, and the level override machinery
 * must behave (setLevel rejects unsupported levels, resetLevel restores
 * the environment-resolved default).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"

namespace rpx::simd {
namespace {

/** RAII level override so a failing test cannot leak its level. */
class ScopedLevel
{
  public:
    explicit ScopedLevel(Level level) { ok_ = setLevel(level); }
    ~ScopedLevel() { resetLevel(); }
    bool ok() const { return ok_; }

  private:
    bool ok_ = false;
};

std::vector<u8>
randomPacked(size_t bytes, u64 seed)
{
    Rng rng(seed);
    std::vector<u8> packed(bytes);
    for (u8 &b : packed)
        b = static_cast<u8>(rng.uniformInt(0, 255));
    return packed;
}

/** Pure reference unpack: code i is bits [2i, 2i+2) of the packed run. */
u8
referenceCode(const std::vector<u8> &packed, size_t index)
{
    return static_cast<u8>((packed[index / 4] >> (2 * (index % 4))) & 3u);
}

TEST(Simd, LevelQueryBasics)
{
    EXPECT_TRUE(levelSupported(Level::Scalar));
    EXPECT_GE(static_cast<int>(bestSupported()),
              static_cast<int>(Level::Scalar));
    const std::vector<Level> levels = supportedLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), Level::Scalar);
    for (const Level level : levels) {
        EXPECT_TRUE(levelSupported(level));
        EXPECT_NE(levelName(level), nullptr);
    }
}

TEST(Simd, SetLevelRejectsUnsupported)
{
    // Scalar is always accepted and always restorable.
    EXPECT_TRUE(setLevel(Level::Scalar));
    EXPECT_EQ(activeLevel(), Level::Scalar);
#if defined(__x86_64__)
    EXPECT_FALSE(setLevel(Level::Neon));
    EXPECT_EQ(activeLevel(), Level::Scalar) << "failed set must not stick";
#endif
    resetLevel();
}

TEST(Simd, UnpackMatchesReferenceAtEveryLevel)
{
    const std::vector<u8> packed = randomPacked(1024, 7);
    const size_t total = packed.size() * 4;
    // Odd start offsets exercise the head peel; odd counts the tail.
    const std::pair<size_t, size_t> spans[] = {
        {0, total},   {0, 1},    {1, 1},     {3, 5},    {1, 63},
        {5, 64},      {7, 129},  {63, 64},   {64, 64},  {129, 511},
        {total - 3, 3}, {total, 0},
    };
    for (const Level level : supportedLevels()) {
        ScopedLevel guard(level);
        ASSERT_TRUE(guard.ok()) << levelName(level);
        for (const auto &[first, count] : spans) {
            std::vector<u8> out(count + 2, 0xEE);
            unpackMask2bpp(packed.data(), first, count, out.data());
            for (size_t i = 0; i < count; ++i)
                ASSERT_EQ(out[i], referenceCode(packed, first + i))
                    << levelName(level) << " first=" << first
                    << " count=" << count << " i=" << i;
            // The kernel must not write past count.
            EXPECT_EQ(out[count], 0xEE) << levelName(level);
            EXPECT_EQ(out[count + 1], 0xEE) << levelName(level);
        }
    }
}

TEST(Simd, CountRMatchesReferenceAtEveryLevel)
{
    const std::vector<u8> packed = randomPacked(512, 21);
    const size_t total = packed.size() * 4;
    const std::pair<size_t, size_t> spans[] = {
        {0, total}, {0, 1},   {1, 2},   {2, 62},  {3, 65},
        {64, 128},  {65, 127}, {511, 513}, {total, 0},
    };
    for (const Level level : supportedLevels()) {
        ScopedLevel guard(level);
        ASSERT_TRUE(guard.ok()) << levelName(level);
        for (const auto &[first, count] : spans) {
            u32 want = 0;
            for (size_t i = 0; i < count; ++i)
                if (referenceCode(packed, first + i) == 3u)
                    ++want;
            EXPECT_EQ(countR2bpp(packed.data(), first, count), want)
                << levelName(level) << " first=" << first
                << " count=" << count;
        }
    }
}

TEST(Simd, ApplyLutMatchesReferenceAtEveryLevel)
{
    // A table that visits every input byte value, plus a permutation-ish
    // map so mistakes in any lane show up.
    std::vector<u8> lut(256);
    for (int i = 0; i < 256; ++i)
        lut[static_cast<size_t>(i)] = static_cast<u8>((i * 37 + 11) & 0xFF);
    for (const size_t n : {size_t{0}, size_t{1}, size_t{15}, size_t{16},
                           size_t{31}, size_t{257}, size_t{4096}}) {
        std::vector<u8> input(n);
        for (size_t i = 0; i < n; ++i)
            input[i] = static_cast<u8>(i * 101 + 7);
        std::vector<u8> want(input);
        for (u8 &b : want)
            b = lut[b];
        for (const Level level : supportedLevels()) {
            ScopedLevel guard(level);
            ASSERT_TRUE(guard.ok()) << levelName(level);
            std::vector<u8> got(input);
            applyLut256(got.data(), got.size(), lut.data());
            ASSERT_EQ(got, want) << levelName(level) << " n=" << n;
        }
    }
}

TEST(Simd, AllInputByteValuesThroughLut)
{
    std::vector<u8> lut(256);
    for (int i = 0; i < 256; ++i)
        lut[static_cast<size_t>(i)] = static_cast<u8>(255 - i);
    std::vector<u8> input(256);
    for (int i = 0; i < 256; ++i)
        input[static_cast<size_t>(i)] = static_cast<u8>(i);
    for (const Level level : supportedLevels()) {
        ScopedLevel guard(level);
        ASSERT_TRUE(guard.ok()) << levelName(level);
        std::vector<u8> got(input);
        applyLut256(got.data(), got.size(), lut.data());
        for (int i = 0; i < 256; ++i)
            ASSERT_EQ(got[static_cast<size_t>(i)],
                      static_cast<u8>(255 - i))
                << levelName(level);
    }
}

} // namespace
} // namespace rpx::simd
