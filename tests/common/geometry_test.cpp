/** @file Unit tests for Rect/Point geometry. */

#include <gtest/gtest.h>

#include "common/geometry.hpp"

namespace rpx {
namespace {

TEST(Rect, EmptyAndArea)
{
    EXPECT_TRUE(Rect{}.empty());
    EXPECT_TRUE((Rect{5, 5, 0, 3}).empty());
    EXPECT_TRUE((Rect{5, 5, 3, -1}).empty());
    EXPECT_EQ((Rect{0, 0, 4, 3}).area(), 12);
    EXPECT_EQ(Rect{}.area(), 0);
}

TEST(Rect, ContainsIsHalfOpen)
{
    const Rect r{10, 20, 5, 5};
    EXPECT_TRUE(r.contains(10, 20));
    EXPECT_TRUE(r.contains(14, 24));
    EXPECT_FALSE(r.contains(15, 24));
    EXPECT_FALSE(r.contains(14, 25));
    EXPECT_FALSE(r.contains(9, 20));
}

TEST(Rect, ContainsRow)
{
    const Rect r{0, 10, 5, 3};
    EXPECT_FALSE(r.containsRow(9));
    EXPECT_TRUE(r.containsRow(10));
    EXPECT_TRUE(r.containsRow(12));
    EXPECT_FALSE(r.containsRow(13));
}

TEST(Rect, IntersectBasic)
{
    const Rect a{0, 0, 10, 10};
    const Rect b{5, 5, 10, 10};
    const Rect i = a.intersect(b);
    EXPECT_EQ(i, (Rect{5, 5, 5, 5}));
}

TEST(Rect, IntersectDisjointIsEmpty)
{
    const Rect a{0, 0, 4, 4};
    const Rect b{4, 0, 4, 4}; // share only the open edge
    EXPECT_TRUE(a.intersect(b).empty());
    EXPECT_FALSE(a.overlaps(b));
}

TEST(Rect, UniteCoversBoth)
{
    const Rect a{0, 0, 2, 2};
    const Rect b{10, 10, 2, 2};
    const Rect u = a.unite(b);
    EXPECT_TRUE(u.contains(0, 0));
    EXPECT_TRUE(u.contains(11, 11));
    EXPECT_EQ(u, (Rect{0, 0, 12, 12}));
}

TEST(Rect, UniteWithEmpty)
{
    const Rect a{3, 4, 5, 6};
    EXPECT_EQ(a.unite(Rect{}), a);
    EXPECT_EQ(Rect{}.unite(a), a);
}

TEST(Rect, ClippedTo)
{
    const Rect r{-5, -5, 20, 20};
    EXPECT_EQ(r.clippedTo(10, 8), (Rect{0, 0, 10, 8}));
    EXPECT_TRUE((Rect{20, 20, 5, 5}).clippedTo(10, 10).empty());
}

TEST(Rect, Inflated)
{
    const Rect r{10, 10, 4, 4};
    EXPECT_EQ(r.inflated(2), (Rect{8, 8, 8, 8}));
    // Deflating below zero clamps the size.
    EXPECT_EQ(r.inflated(-3).w, 0);
}

TEST(Rect, IouIdentityAndDisjoint)
{
    const Rect a{0, 0, 10, 10};
    EXPECT_DOUBLE_EQ(iou(a, a), 1.0);
    EXPECT_DOUBLE_EQ(iou(a, Rect{20, 20, 10, 10}), 0.0);
}

TEST(Rect, IouPartial)
{
    const Rect a{0, 0, 10, 10};
    const Rect b{5, 0, 10, 10};
    // inter = 50, union = 150.
    EXPECT_NEAR(iou(a, b), 1.0 / 3.0, 1e-12);
}

TEST(Rect, CenterOfOddSizes)
{
    EXPECT_EQ((Rect{0, 0, 5, 5}).center(), (Point{2, 2}));
    EXPECT_EQ((Rect{10, 10, 4, 4}).center(), (Point{12, 12}));
}

/** Property sweep: intersect is commutative and contained in both. */
class RectPairProperty
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RectPairProperty, IntersectSymmetricAndContained)
{
    const int ia = std::get<0>(GetParam());
    const int ib = std::get<1>(GetParam());
    // Deterministic pseudo-grid of rect shapes.
    const Rect a{ia * 3 - 10, ia * 2 - 6, 5 + ia % 7, 4 + ia % 5};
    const Rect b{ib * 2 - 8, ib * 3 - 12, 3 + ib % 9, 6 + ib % 4};
    const Rect i1 = a.intersect(b);
    const Rect i2 = b.intersect(a);
    EXPECT_EQ(i1, i2);
    if (!i1.empty()) {
        EXPECT_TRUE(a.contains(i1.x, i1.y));
        EXPECT_TRUE(b.contains(i1.x, i1.y));
        EXPECT_LE(i1.right(), std::min(a.right(), b.right()));
        EXPECT_LE(i1.bottom(), std::min(a.bottom(), b.bottom()));
        // IoU is symmetric and within (0, 1].
        const double v = iou(a, b);
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 1.0);
        EXPECT_DOUBLE_EQ(v, iou(b, a));
    }
}

INSTANTIATE_TEST_SUITE_P(Grid, RectPairProperty,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Range(0, 8)));

} // namespace
} // namespace rpx
