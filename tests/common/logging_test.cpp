/** @file Unit tests for logging levels and the error helpers. */

#include <iostream>
#include <regex>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace rpx {
namespace {

/** Capture std::cerr for the duration of a scope. */
class CerrCapture
{
  public:
    CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

/** "[HH:MM:SS.mmm] " wall-clock prefix every emitted line carries. */
const std::regex kStampedLine(
    R"(\[\d{2}:\d{2}:\d{2}\.\d{3}\] [^\n]*\n)");

/** Strip the timestamp prefixes so tests can compare message content. */
std::string
withoutStamps(const std::string &text)
{
    return std::regex_replace(
        text, std::regex(R"(\[\d{2}:\d{2}:\d{2}\.\d{3}\] )"), "");
}

class LoggingTest : public ::testing::Test
{
  protected:
    void TearDown() override { setLogLevel(LogLevel::Warn); }
};

TEST_F(LoggingTest, WarnEmittedAtDefaultLevel)
{
    CerrCapture capture;
    warn("disk ", 42, " is wobbly");
    EXPECT_EQ(withoutStamps(capture.text()), "warn: disk 42 is wobbly\n");
    EXPECT_TRUE(std::regex_match(capture.text(), kStampedLine))
        << capture.text();
}

TEST_F(LoggingTest, InfoSuppressedAtDefaultLevel)
{
    CerrCapture capture;
    inform("routine message");
    debug("even more routine");
    EXPECT_TRUE(capture.text().empty());
}

TEST_F(LoggingTest, DebugLevelEmitsEverything)
{
    setLogLevel(LogLevel::Debug);
    CerrCapture capture;
    debug("d");
    inform("i");
    warn("w");
    EXPECT_EQ(withoutStamps(capture.text()),
              "debug: d\ninfo: i\nwarn: w\n");
}

TEST_F(LoggingTest, SilentSuppressesAll)
{
    setLogLevel(LogLevel::Silent);
    CerrCapture capture;
    warn("nothing to see");
    EXPECT_TRUE(capture.text().empty());
    EXPECT_EQ(logLevel(), LogLevel::Silent);
}

TEST_F(LoggingTest, ParseLogLevelNames)
{
    using detail::parseLogLevel;
    EXPECT_EQ(parseLogLevel("debug", LogLevel::Warn), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("INFO", LogLevel::Warn), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("Warn", LogLevel::Silent), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("silent", LogLevel::Warn), LogLevel::Silent);
    // Unknown and missing names fall back (RPX_LOG_LEVEL typos are safe).
    EXPECT_EQ(parseLogLevel("verbose", LogLevel::Warn), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel(nullptr, LogLevel::Info), LogLevel::Info);
}

TEST_F(LoggingTest, ParseLogLevelWarnsOnGarbage)
{
    {
        CerrCapture capture;
        EXPECT_EQ(detail::parseLogLevel("verbse", LogLevel::Warn),
                  LogLevel::Warn);
        EXPECT_NE(capture.text().find("unrecognized RPX_LOG_LEVEL"),
                  std::string::npos);
        EXPECT_NE(capture.text().find("verbse"), std::string::npos);
    }
    {
        // An unset/empty variable is not a typo: stays quiet.
        CerrCapture capture;
        EXPECT_EQ(detail::parseLogLevel(nullptr, LogLevel::Warn),
                  LogLevel::Warn);
        EXPECT_EQ(detail::parseLogLevel("", LogLevel::Warn),
                  LogLevel::Warn);
        EXPECT_TRUE(capture.text().empty());
    }
}

TEST_F(LoggingTest, ConcurrentWarnsDoNotInterleaveWithinLines)
{
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;
    CerrCapture capture;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([i] {
            for (int k = 0; k < kPerThread; ++k)
                warn("thread ", i, " message ", k, " end");
        });
    }
    for (auto &t : threads)
        t.join();

    // Every line is complete: stamped, tagged, and terminated. A torn
    // write would produce a line that fails the pattern.
    std::istringstream lines(capture.text());
    std::string line;
    int count = 0;
    const std::regex line_re(
        R"(\[\d{2}:\d{2}:\d{2}\.\d{3}\] warn: thread \d+ message \d+ end)");
    while (std::getline(lines, line)) {
        EXPECT_TRUE(std::regex_match(line, line_re)) << line;
        ++count;
    }
    EXPECT_EQ(count, kThreads * kPerThread);
}

TEST(ErrorHelpers, ThrowInvalidFormatsMessage)
{
    try {
        throwInvalid("bad value ", 7, " for ", "knob");
        FAIL() << "should have thrown";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ(e.what(), "bad value 7 for knob");
    }
}

TEST(ErrorHelpers, ThrowRuntimeFormatsMessage)
{
    try {
        throwRuntime("stage ", 2, " failed");
        FAIL() << "should have thrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "stage 2 failed");
    }
}

TEST(ErrorHelpers, AssertMacroThrowsWithLocation)
{
    try {
        RPX_ASSERT(1 == 2, "math broke");
        FAIL() << "should have thrown";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("math broke"), std::string::npos);
        EXPECT_NE(msg.find("logging_test.cpp"), std::string::npos);
    }
    // The passing case is silent.
    EXPECT_NO_THROW(RPX_ASSERT(true, "fine"));
}

} // namespace
} // namespace rpx
