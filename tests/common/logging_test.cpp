/** @file Unit tests for logging levels and the error helpers. */

#include <iostream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace rpx {
namespace {

/** Capture std::cerr for the duration of a scope. */
class CerrCapture
{
  public:
    CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
    ~CerrCapture() { std::cerr.rdbuf(old_); }
    std::string text() const { return buffer_.str(); }

  private:
    std::ostringstream buffer_;
    std::streambuf *old_;
};

class LoggingTest : public ::testing::Test
{
  protected:
    void TearDown() override { setLogLevel(LogLevel::Warn); }
};

TEST_F(LoggingTest, WarnEmittedAtDefaultLevel)
{
    CerrCapture capture;
    warn("disk ", 42, " is wobbly");
    EXPECT_EQ(capture.text(), "warn: disk 42 is wobbly\n");
}

TEST_F(LoggingTest, InfoSuppressedAtDefaultLevel)
{
    CerrCapture capture;
    inform("routine message");
    debug("even more routine");
    EXPECT_TRUE(capture.text().empty());
}

TEST_F(LoggingTest, DebugLevelEmitsEverything)
{
    setLogLevel(LogLevel::Debug);
    CerrCapture capture;
    debug("d");
    inform("i");
    warn("w");
    EXPECT_EQ(capture.text(), "debug: d\ninfo: i\nwarn: w\n");
}

TEST_F(LoggingTest, SilentSuppressesAll)
{
    setLogLevel(LogLevel::Silent);
    CerrCapture capture;
    warn("nothing to see");
    EXPECT_TRUE(capture.text().empty());
    EXPECT_EQ(logLevel(), LogLevel::Silent);
}

TEST(ErrorHelpers, ThrowInvalidFormatsMessage)
{
    try {
        throwInvalid("bad value ", 7, " for ", "knob");
        FAIL() << "should have thrown";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ(e.what(), "bad value 7 for knob");
    }
}

TEST(ErrorHelpers, ThrowRuntimeFormatsMessage)
{
    try {
        throwRuntime("stage ", 2, " failed");
        FAIL() << "should have thrown";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "stage 2 failed");
    }
}

TEST(ErrorHelpers, AssertMacroThrowsWithLocation)
{
    try {
        RPX_ASSERT(1 == 2, "math broke");
        FAIL() << "should have thrown";
    } catch (const std::runtime_error &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("math broke"), std::string::npos);
        EXPECT_NE(msg.find("logging_test.cpp"), std::string::npos);
    }
    // The passing case is silent.
    EXPECT_NO_THROW(RPX_ASSERT(true, "fine"));
}

} // namespace
} // namespace rpx
