/** @file Unit tests for the running-statistics accumulators. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace rpx {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSeries)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12); // population variance
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double v = 0.37 * i - 3.0;
        all.add(v);
        (i < 40 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
    EXPECT_NEAR(a.min(), all.min(), 1e-12);
    EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    const double mean_before = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);
    RunningStats c;
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(RunningStats, MergingEmptyDoesNotPoisonMinMax)
{
    // An empty accumulator carries +/-infinity sentinels internally;
    // merging it in must not leak them into min()/max().
    RunningStats a, empty;
    a.add(-2.0);
    a.add(7.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.min(), -2.0);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
    EXPECT_TRUE(std::isfinite(a.min()));
    EXPECT_TRUE(std::isfinite(a.max()));
}

TEST(RunningStats, MergeIntoEmptyCopiesExactly)
{
    RunningStats src;
    for (double v : {4.0, -1.0, 2.5, 4.0, 0.5})
        src.add(v);

    RunningStats dst;
    dst.merge(src);
    EXPECT_EQ(dst.count(), src.count());
    EXPECT_DOUBLE_EQ(dst.mean(), src.mean());
    EXPECT_DOUBLE_EQ(dst.variance(), src.variance());
    EXPECT_DOUBLE_EQ(dst.stddev(), src.stddev());
    EXPECT_DOUBLE_EQ(dst.sum(), src.sum());
    EXPECT_DOUBLE_EQ(dst.min(), src.min());
    EXPECT_DOUBLE_EQ(dst.max(), src.max());

    // The copy must behave like the original under further adds.
    dst.add(10.0);
    src.add(10.0);
    EXPECT_DOUBLE_EQ(dst.mean(), src.mean());
    EXPECT_DOUBLE_EQ(dst.stddev(), src.stddev());
    EXPECT_DOUBLE_EQ(dst.max(), 10.0);
}

TEST(RunningStats, MergeEmptyIntoEmptyStaysEmpty)
{
    RunningStats a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(RunningStats, ResetAfterMergeClearsSentinels)
{
    RunningStats a;
    a.add(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    // After reset the accumulator accepts new data cleanly.
    a.add(-3.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), -3.0);
}

TEST(Percentile, Median)
{
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50.0), 2.5);
}

TEST(Percentile, Extremes)
{
    EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100.0), 9.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(VectorStats, MeanStddevRms)
{
    const std::vector<double> v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 3.5);
    EXPECT_NEAR(stddev(v), std::sqrt(0.5), 1e-12);
    EXPECT_NEAR(rms(v), std::sqrt(12.5), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
    EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

} // namespace
} // namespace rpx
