/** @file Unit tests for the running-statistics accumulators. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace rpx {
namespace {

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSeries)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 4.0, 1e-12); // population variance
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats all, a, b;
    for (int i = 0; i < 100; ++i) {
        const double v = 0.37 * i - 3.0;
        all.add(v);
        (i < 40 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.stddev(), all.stddev(), 1e-9);
    EXPECT_NEAR(a.min(), all.min(), 1e-12);
    EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    const double mean_before = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean_before);
    RunningStats c;
    c.merge(a);
    EXPECT_DOUBLE_EQ(c.mean(), mean_before);
}

TEST(Percentile, Median)
{
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4}, 50.0), 2.5);
}

TEST(Percentile, Extremes)
{
    EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile({5, 1, 9}, 100.0), 9.0);
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(VectorStats, MeanStddevRms)
{
    const std::vector<double> v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 3.5);
    EXPECT_NEAR(stddev(v), std::sqrt(0.5), 1e-12);
    EXPECT_NEAR(rms(v), std::sqrt(12.5), 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
    EXPECT_DOUBLE_EQ(rms({}), 0.0);
}

} // namespace
} // namespace rpx
