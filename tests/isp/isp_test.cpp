/** @file Unit tests for the ISP stages: demosaic, gamma, colour, chain. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "isp/color.hpp"
#include "isp/demosaic.hpp"
#include "isp/gamma.hpp"
#include "isp/isp_pipeline.hpp"
#include "sensor/sensor.hpp"

namespace rpx {
namespace {

Image
uniformBayer(i32 w, i32 h, u8 r, u8 g, u8 b)
{
    Image raw(w, h, PixelFormat::BayerRggb);
    for (i32 y = 0; y < h; ++y) {
        for (i32 x = 0; x < w; ++x) {
            u8 v;
            if ((y & 1) == 0)
                v = ((x & 1) == 0) ? r : g;
            else
                v = ((x & 1) == 0) ? g : b;
            raw.set(x, y, v);
        }
    }
    return raw;
}

TEST(Demosaic, UniformColorReconstructedExactly)
{
    const Image raw = uniformBayer(8, 8, 120, 60, 30);
    const Image rgb = demosaicBilinear(raw);
    // Interior pixels see balanced neighbourhoods; uniform input must give
    // uniform output.
    for (i32 y = 2; y < 6; ++y) {
        for (i32 x = 2; x < 6; ++x) {
            EXPECT_EQ(rgb.at(x, y, 0), 120);
            EXPECT_EQ(rgb.at(x, y, 1), 60);
            EXPECT_EQ(rgb.at(x, y, 2), 30);
        }
    }
}

TEST(Demosaic, RejectsNonBayer)
{
    Image gray(4, 4);
    EXPECT_THROW(demosaicBilinear(gray), std::invalid_argument);
}

TEST(Gamma, IdentityWhenGammaOne)
{
    GammaLut lut(1.0);
    for (int v = 0; v < 256; v += 17)
        EXPECT_EQ(lut.apply(static_cast<u8>(v)), v);
}

TEST(Gamma, EncodeBrightensMidtones)
{
    GammaLut lut(1.0 / 2.2);
    EXPECT_EQ(lut.apply(0), 0);
    EXPECT_EQ(lut.apply(255), 255);
    EXPECT_GT(lut.apply(64), 64);
}

TEST(Gamma, MonotoneNondecreasing)
{
    GammaLut lut(1.0 / 2.2);
    for (int v = 1; v < 256; ++v)
        EXPECT_GE(lut.apply(static_cast<u8>(v)),
                  lut.apply(static_cast<u8>(v - 1)));
}

TEST(Gamma, RejectsNonPositive)
{
    EXPECT_THROW(GammaLut(0.0), std::invalid_argument);
}

TEST(Color, RgbYuvRoundTrip)
{
    Image rgb(4, 4, PixelFormat::Rgb8);
    for (i32 y = 0; y < 4; ++y) {
        for (i32 x = 0; x < 4; ++x) {
            rgb.set(x, y, 0, static_cast<u8>(40 * x));
            rgb.set(x, y, 1, static_cast<u8>(50 * y));
            rgb.set(x, y, 2, 90);
        }
    }
    const YuvImage yuv = rgbToYuv(rgb);
    const Image back = yuvToRgb(yuv);
    for (i32 y = 0; y < 4; ++y)
        for (i32 x = 0; x < 4; ++x)
            for (int c = 0; c < 3; ++c)
                EXPECT_NEAR(back.at(x, y, c), rgb.at(x, y, c), 3);
}

TEST(Color, GrayNeutralHasCenteredChroma)
{
    Image rgb(2, 2, PixelFormat::Rgb8, 128);
    const YuvImage yuv = rgbToYuv(rgb);
    EXPECT_EQ(yuv.y.at(0, 0), 128);
    EXPECT_EQ(yuv.u.at(0, 0), 128);
    EXPECT_EQ(yuv.v.at(0, 0), 128);
}

Image
noiseBayer(i32 w, i32 h, u64 seed)
{
    Rng rng(seed);
    Image raw(w, h, PixelFormat::BayerRggb);
    for (i32 y = 0; y < h; ++y)
        for (i32 x = 0; x < w; ++x)
            raw.set(x, y, static_cast<u8>(rng.uniformInt(0, 255)));
    return raw;
}

/** Reference demosaic: the per-pixel bounds-checked 3x3 walk. */
Image
referenceDemosaic(const Image &bayer)
{
    const auto site = [](i32 x, i32 y) {
        if ((y & 1) == 0)
            return ((x & 1) == 0) ? 0 : 1;
        return ((x & 1) == 0) ? 1 : 2;
    };
    Image rgb(bayer.width(), bayer.height(), PixelFormat::Rgb8);
    for (i32 y = 0; y < bayer.height(); ++y) {
        for (i32 x = 0; x < bayer.width(); ++x) {
            for (int c = 0; c < 3; ++c) {
                if (site(x, y) == c) {
                    rgb.set(x, y, c, bayer.at(x, y));
                    continue;
                }
                int sum = 0, n = 0;
                for (i32 dy = -1; dy <= 1; ++dy) {
                    for (i32 dx = -1; dx <= 1; ++dx) {
                        if (!bayer.inBounds(x + dx, y + dy))
                            continue;
                        if (site(x + dx, y + dy) == c) {
                            sum += bayer.at(x + dx, y + dy);
                            ++n;
                        }
                    }
                }
                rgb.set(x, y, c,
                        n > 0 ? static_cast<u8>(sum / n) : u8{0});
            }
        }
    }
    return rgb;
}

TEST(Demosaic, FastPathMatchesReferenceWalk)
{
    // Odd geometries put the interior fast path's row ends everywhere,
    // and tiny frames take the all-generic branch.
    for (const auto &[w, h] : std::initializer_list<std::pair<i32, i32>>{
             {2, 2}, {3, 3}, {8, 8}, {21, 17}, {16, 9}, {33, 32}}) {
        const Image raw = noiseBayer(w, h, 7u * static_cast<u64>(w + h));
        const Image want = referenceDemosaic(raw);
        Image got;
        demosaicBilinearInto(raw, got);
        ASSERT_EQ(got.data(), want.data()) << w << "x" << h;
        ASSERT_EQ(demosaicBilinear(raw).data(), want.data());
    }
}

TEST(Gamma, ImageApplyMatchesScalarLutAtEveryLevel)
{
    GammaLut lut(1.0 / 2.2);
    Image base(31, 17, PixelFormat::Rgb8);
    Rng rng(5);
    for (u8 &b : base.data())
        b = static_cast<u8>(rng.uniformInt(0, 255));
    for (const simd::Level level : simd::supportedLevels()) {
        ASSERT_TRUE(simd::setLevel(level));
        Image img = base;
        lut.apply(img);
        for (size_t i = 0; i < base.data().size(); ++i)
            ASSERT_EQ(img.data()[i], lut.apply(base.data()[i]))
                << simd::levelName(level) << " i=" << i;
    }
    simd::resetLevel();
}

TEST(Color, RgbToGrayIntoMatchesToGray)
{
    Image rgb(13, 9, PixelFormat::Rgb8);
    Rng rng(9);
    for (u8 &b : rgb.data())
        b = static_cast<u8>(rng.uniformInt(0, 255));
    Image gray;
    rgbToGrayInto(rgb, gray);
    EXPECT_EQ(gray.data(), rgb.toGray().data());

    Image already(5, 5, PixelFormat::Gray8, 42);
    rgbToGrayInto(already, gray);
    EXPECT_EQ(gray.data(), already.data());
}

TEST(IspPipeline, ProcessIntoMatchesProcess)
{
    for (const IspOutput output : {IspOutput::Gray, IspOutput::Rgb}) {
        IspConfig cfg;
        cfg.output = output;
        IspPipeline a(cfg);
        IspPipeline b(cfg);
        Image out;
        for (int t = 0; t < 3; ++t) {
            const Image raw = noiseBayer(22, 14, 100 + t);
            const Image want = a.process(raw);
            b.processInto(raw, out); // `out` is reused across frames
            ASSERT_EQ(out.data(), want.data()) << "frame " << t;
            ASSERT_EQ(out.channels(), want.channels());
        }
        // Gray pass-through input, too.
        Image gray(10, 6, PixelFormat::Gray8, 80);
        const Image want = a.process(gray);
        b.processInto(gray, out);
        EXPECT_EQ(out.data(), want.data());
        EXPECT_EQ(a.budget().pixels(), b.budget().pixels());
        EXPECT_EQ(a.budget().cycles(), b.budget().cycles());
    }
}

TEST(IspPipeline, ProcessesBayerToGray)
{
    IspConfig cfg;
    cfg.gamma = 1.0; // identity for exact checks
    IspPipeline isp(cfg);
    const Image raw = uniformBayer(8, 8, 100, 100, 100);
    const Image out = isp.process(raw);
    EXPECT_EQ(out.channels(), 1);
    EXPECT_EQ(out.at(4, 4), 100);
}

TEST(IspPipeline, MeetsTwoPixelPerClockBudget)
{
    IspPipeline isp;
    const Image raw = uniformBayer(64, 64, 10, 20, 30);
    isp.process(raw);
    isp.process(raw);
    EXPECT_TRUE(isp.budget().withinBudget());
    EXPECT_EQ(isp.budget().pixels(), 2u * 64u * 64u);
}

TEST(IspPipeline, GrayPassThrough)
{
    IspConfig cfg;
    cfg.gamma = 1.0;
    IspPipeline isp(cfg);
    Image gray(8, 8, PixelFormat::Gray8, 77);
    EXPECT_EQ(isp.process(gray).at(3, 3), 77);
}

} // namespace
} // namespace rpx
