/** @file Unit tests for the planar YUV rhythmic codec. */

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "frame/draw.hpp"
#include "frame/metrics.hpp"
#include "isp/planar_codec.hpp"

namespace rpx {
namespace {

YuvImage
colorScene(i32 w, i32 h, u64 seed)
{
    Image rgb(w, h, PixelFormat::Rgb8);
    Rng rng(seed);
    for (i32 y = 0; y < h; ++y) {
        for (i32 x = 0; x < w; ++x) {
            rgb.set(x, y, 0, static_cast<u8>(rng.uniformInt(0, 255)));
            rgb.set(x, y, 1, static_cast<u8>((x * 3 + y) % 256));
            rgb.set(x, y, 2, static_cast<u8>((x + y * 5) % 256));
        }
    }
    return rgbToYuv(rgb);
}

TEST(PlanarCodec, FullFrame444IsLossless)
{
    const i32 w = 32, h = 24;
    PlanarRhythmicCodec codec(w, h, ChromaSubsampling::Yuv444);
    codec.setRegionLabels({fullFrameRegion(w, h)});
    const YuvImage scene = colorScene(w, h, 1);
    const EncodedYuvFrame encoded = codec.encode(scene, 0);
    const YuvImage back = codec.decode(encoded);
    EXPECT_EQ(back.y, scene.y);
    EXPECT_EQ(back.u, scene.u);
    EXPECT_EQ(back.v, scene.v);
    EXPECT_NEAR(encoded.keptFraction(), 1.0, 1e-9);
}

TEST(PlanarCodec, Yuv420LumaLosslessChromaClose)
{
    const i32 w = 32, h = 24;
    PlanarRhythmicCodec codec(w, h, ChromaSubsampling::Yuv420);
    codec.setRegionLabels({fullFrameRegion(w, h)});

    // Smooth chroma so 4:2:0 resampling is nearly invertible.
    Image rgb(w, h, PixelFormat::Rgb8);
    fillRectRgb(rgb, rgb.bounds(), 180, 90, 60);
    const YuvImage scene = rgbToYuv(rgb);

    const EncodedYuvFrame encoded = codec.encode(scene, 0);
    const YuvImage back = codec.decode(encoded);
    EXPECT_EQ(back.y, scene.y);
    EXPECT_LE(mse(back.u, scene.u), 2.0);
    EXPECT_LE(mse(back.v, scene.v), 2.0);
    // 4:2:0 stores half the bytes of 4:4:4.
    EXPECT_EQ(encoded.u.pixelBytes(), static_cast<Bytes>(w * h / 4));
}

TEST(PlanarCodec, ChromaLabelsScaleWithSubsampling)
{
    PlanarRhythmicCodec codec(64, 48, ChromaSubsampling::Yuv420);
    EXPECT_EQ(codec.chromaWidth(), 32);
    EXPECT_EQ(codec.chromaHeight(), 24);
    codec.setRegionLabels({{8, 8, 16, 16, 2, 1, 0}});
    const YuvImage scene = colorScene(64, 48, 2);
    const EncodedYuvFrame encoded = codec.encode(scene, 0);
    // Luma keeps an 8x8 stride-2 grid of the 16x16 region; chroma keeps
    // a 4x4 grid of the scaled 8x8 region.
    EXPECT_EQ(encoded.y.pixels.size(), 64u);
    EXPECT_EQ(encoded.u.pixels.size(), 16u);
    EXPECT_EQ(encoded.v.pixels.size(), 16u);
}

TEST(PlanarCodec, UnsampledChromaIsNeutral)
{
    PlanarRhythmicCodec codec(32, 32, ChromaSubsampling::Yuv444);
    codec.setRegionLabels({{0, 0, 8, 8, 1, 1, 0}});
    const YuvImage scene = colorScene(32, 32, 3);
    const YuvImage back = codec.decode(codec.encode(scene, 0));
    // Outside the region: luma black, chroma neutral -> gray, not green.
    EXPECT_EQ(back.y.at(20, 20), 0);
    EXPECT_EQ(back.u.at(20, 20), 128);
    EXPECT_EQ(back.v.at(20, 20), 128);
    const Image rgb = yuvToRgb(back);
    EXPECT_EQ(rgb.at(20, 20, 0), rgb.at(20, 20, 1));
    EXPECT_EQ(rgb.at(20, 20, 1), rgb.at(20, 20, 2));
}

TEST(PlanarCodec, SkipRecoversFromHistoryAcrossAllPlanes)
{
    const i32 w = 16, h = 16;
    PlanarRhythmicCodec codec(w, h, ChromaSubsampling::Yuv444);
    codec.setRegionLabels({{0, 0, w, h, 1, 2, 0}});
    const YuvImage scene = colorScene(w, h, 4);
    const EncodedYuvFrame f0 = codec.encode(scene, 0);
    const EncodedYuvFrame f1 = codec.encode(scene, 1); // skipped
    EXPECT_TRUE(f1.y.pixels.empty());
    EXPECT_TRUE(f1.u.pixels.empty());
    const YuvImage back = codec.decode(f1, {&f0});
    EXPECT_EQ(back.y, scene.y);
    EXPECT_EQ(back.u, scene.u);
    EXPECT_EQ(back.v, scene.v);
}

TEST(PlanarCodec, RejectsOddGeometryFor420)
{
    EXPECT_THROW(PlanarRhythmicCodec(31, 24, ChromaSubsampling::Yuv420),
                 std::invalid_argument);
    EXPECT_NO_THROW(
        PlanarRhythmicCodec(31, 23, ChromaSubsampling::Yuv444));
}

TEST(PlanarCodec, GeometryMismatchThrows)
{
    PlanarRhythmicCodec codec(16, 16);
    const YuvImage wrong = colorScene(8, 8, 5);
    EXPECT_THROW(codec.encode(wrong, 0), std::invalid_argument);
}

} // namespace
} // namespace rpx
