/** @file Unit tests for the EDF frame queue. */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "fleet/scheduler.hpp"

namespace rpx::fleet {
namespace {

FrameTask
taskWithDeadline(u64 index, std::chrono::milliseconds offset)
{
    FrameTask t;
    t.index = static_cast<FrameIndex>(index);
    t.has_deadline = true;
    t.deadline = std::chrono::steady_clock::time_point{} + offset;
    return t;
}

FrameTask
taskNoDeadline(u64 index)
{
    FrameTask t;
    t.index = static_cast<FrameIndex>(index);
    return t;
}

TEST(EdfQueue, PopsEarliestDeadlineFirst)
{
    EdfQueue q(8);
    ASSERT_TRUE(q.push(taskWithDeadline(0, std::chrono::milliseconds(30))));
    ASSERT_TRUE(q.push(taskWithDeadline(1, std::chrono::milliseconds(10))));
    ASSERT_TRUE(q.push(taskWithDeadline(2, std::chrono::milliseconds(20))));
    EXPECT_EQ(q.pop()->index, 1);
    EXPECT_EQ(q.pop()->index, 2);
    EXPECT_EQ(q.pop()->index, 0);
}

TEST(EdfQueue, DeadlinelessTasksPopInFrameOrder)
{
    EdfQueue q(8);
    ASSERT_TRUE(q.push(taskNoDeadline(2)));
    ASSERT_TRUE(q.push(taskNoDeadline(0)));
    ASSERT_TRUE(q.push(taskNoDeadline(1)));
    EXPECT_EQ(q.pop()->index, 0);
    EXPECT_EQ(q.pop()->index, 1);
    EXPECT_EQ(q.pop()->index, 2);
}

TEST(EdfQueue, UrgentArrivalJumpsTheQueue)
{
    EdfQueue q(8);
    ASSERT_TRUE(q.push(taskWithDeadline(0, std::chrono::milliseconds(50))));
    ASSERT_TRUE(q.push(taskWithDeadline(1, std::chrono::milliseconds(40))));
    EXPECT_EQ(q.pop()->index, 1);
    // A later push with a nearer deadline overtakes the buffered task.
    ASSERT_TRUE(q.push(taskWithDeadline(2, std::chrono::milliseconds(5))));
    EXPECT_EQ(q.pop()->index, 2);
    EXPECT_EQ(q.pop()->index, 0);
}

TEST(EdfQueue, ZeroCapacityRejected)
{
    EXPECT_THROW(EdfQueue(0), std::invalid_argument);
}

TEST(EdfQueue, TryPushRespectsCapacity)
{
    EdfQueue q(2);
    FrameTask a = taskNoDeadline(0);
    FrameTask b = taskNoDeadline(1);
    FrameTask c = taskNoDeadline(2);
    EXPECT_TRUE(q.tryPush(a));
    EXPECT_TRUE(q.tryPush(b));
    EXPECT_FALSE(q.tryPush(c));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.stats().high_water, 2u);
}

TEST(EdfQueue, CloseDrainsThenReturnsNullopt)
{
    EdfQueue q(4);
    ASSERT_TRUE(q.push(taskWithDeadline(0, std::chrono::milliseconds(9))));
    ASSERT_TRUE(q.push(taskWithDeadline(1, std::chrono::milliseconds(3))));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(taskNoDeadline(7)));
    EXPECT_EQ(q.stats().rejected, 1u);
    EXPECT_EQ(q.pop()->index, 1);
    EXPECT_EQ(q.pop()->index, 0);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(EdfQueue, CloseWakesBlockedConsumer)
{
    EdfQueue q(2);
    std::thread consumer([&q] { EXPECT_FALSE(q.pop().has_value()); });
    q.close();
    consumer.join();
}

TEST(EdfQueue, PopForTimesOutOnEmptyQueue)
{
    EdfQueue q(2);
    EXPECT_FALSE(q.popFor(std::chrono::microseconds(1000)).has_value());
    EXPECT_FALSE(q.closed());
}

TEST(EdfQueue, PopForStillPopsEarliestDeadlineFirst)
{
    EdfQueue q(4);
    ASSERT_TRUE(q.push(taskWithDeadline(0, std::chrono::milliseconds(9))));
    ASSERT_TRUE(q.push(taskWithDeadline(1, std::chrono::milliseconds(3))));
    ASSERT_TRUE(q.push(taskWithDeadline(2, std::chrono::milliseconds(6))));
    EXPECT_EQ(q.popFor(std::chrono::microseconds(1000))->index, 1);
    EXPECT_EQ(q.popFor(std::chrono::microseconds(1000))->index, 2);
    EXPECT_EQ(q.popFor(std::chrono::microseconds(1000))->index, 0);
}

TEST(EdfQueue, PopForDrainsAfterClose)
{
    EdfQueue q(2);
    ASSERT_TRUE(q.push(taskNoDeadline(5)));
    q.close();
    EXPECT_EQ(q.popFor(std::chrono::microseconds(1000))->index, 5);
    EXPECT_FALSE(q.popFor(std::chrono::microseconds(1000)).has_value());
}

TEST(EdfQueue, PushForTimesOutOnFullQueueAndRetries)
{
    EdfQueue q(1);
    ASSERT_TRUE(q.push(taskNoDeadline(0)));
    EXPECT_FALSE(
        q.pushFor(taskNoDeadline(1), std::chrono::microseconds(1000)));
    EXPECT_EQ(q.stats().rejected, 0u);
    EXPECT_EQ(q.pop()->index, 0);
    EXPECT_TRUE(
        q.pushFor(taskNoDeadline(1), std::chrono::microseconds(1000)));
    EXPECT_EQ(q.pop()->index, 1);
}

TEST(EdfQueue, PushForRefusedAfterClose)
{
    EdfQueue q(2);
    q.close();
    EXPECT_FALSE(
        q.pushFor(taskNoDeadline(0), std::chrono::microseconds(1000)));
    EXPECT_EQ(q.stats().rejected, 1u);
}

/**
 * Timed-op stress on the EDF queue: polling consumers (the watchdog
 * heartbeat pattern) against blocking producers; every task must arrive
 * exactly once. Run under TSan by the tsan CI job.
 */
TEST(EdfQueue, TimedOpsContentionConservesTasks)
{
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    constexpr int kPerProducer = 800;
    EdfQueue q(4);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i)
                ASSERT_TRUE(q.push(taskNoDeadline(
                    static_cast<u64>(p * kPerProducer + i))));
        });
    }

    std::vector<std::vector<u64>> seen(kConsumers);
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&q, &seen, c] {
            for (;;) {
                auto t = q.popFor(std::chrono::microseconds(200));
                if (t) {
                    seen[static_cast<size_t>(c)].push_back(
                        static_cast<u64>(t->index));
                    continue;
                }
                if (q.closed() && q.size() == 0)
                    return;
            }
        });
    }

    for (auto &t : producers)
        t.join();
    q.close();
    for (auto &t : consumers)
        t.join();

    std::vector<u64> all;
    for (const auto &part : seen)
        all.insert(all.end(), part.begin(), part.end());
    std::sort(all.begin(), all.end());
    ASSERT_EQ(all.size(),
              static_cast<size_t>(kProducers * kPerProducer));
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i], static_cast<u64>(i));
}

} // namespace
} // namespace rpx::fleet
