/** @file Unit tests for the EDF frame queue. */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fleet/scheduler.hpp"

namespace rpx::fleet {
namespace {

FrameTask
taskWithDeadline(u64 index, std::chrono::milliseconds offset)
{
    FrameTask t;
    t.index = static_cast<FrameIndex>(index);
    t.has_deadline = true;
    t.deadline = std::chrono::steady_clock::time_point{} + offset;
    return t;
}

FrameTask
taskNoDeadline(u64 index)
{
    FrameTask t;
    t.index = static_cast<FrameIndex>(index);
    return t;
}

TEST(EdfQueue, PopsEarliestDeadlineFirst)
{
    EdfQueue q(8);
    ASSERT_TRUE(q.push(taskWithDeadline(0, std::chrono::milliseconds(30))));
    ASSERT_TRUE(q.push(taskWithDeadline(1, std::chrono::milliseconds(10))));
    ASSERT_TRUE(q.push(taskWithDeadline(2, std::chrono::milliseconds(20))));
    EXPECT_EQ(q.pop()->index, 1);
    EXPECT_EQ(q.pop()->index, 2);
    EXPECT_EQ(q.pop()->index, 0);
}

TEST(EdfQueue, DeadlinelessTasksPopInFrameOrder)
{
    EdfQueue q(8);
    ASSERT_TRUE(q.push(taskNoDeadline(2)));
    ASSERT_TRUE(q.push(taskNoDeadline(0)));
    ASSERT_TRUE(q.push(taskNoDeadline(1)));
    EXPECT_EQ(q.pop()->index, 0);
    EXPECT_EQ(q.pop()->index, 1);
    EXPECT_EQ(q.pop()->index, 2);
}

TEST(EdfQueue, UrgentArrivalJumpsTheQueue)
{
    EdfQueue q(8);
    ASSERT_TRUE(q.push(taskWithDeadline(0, std::chrono::milliseconds(50))));
    ASSERT_TRUE(q.push(taskWithDeadline(1, std::chrono::milliseconds(40))));
    EXPECT_EQ(q.pop()->index, 1);
    // A later push with a nearer deadline overtakes the buffered task.
    ASSERT_TRUE(q.push(taskWithDeadline(2, std::chrono::milliseconds(5))));
    EXPECT_EQ(q.pop()->index, 2);
    EXPECT_EQ(q.pop()->index, 0);
}

TEST(EdfQueue, ZeroCapacityRejected)
{
    EXPECT_THROW(EdfQueue(0), std::invalid_argument);
}

TEST(EdfQueue, TryPushRespectsCapacity)
{
    EdfQueue q(2);
    FrameTask a = taskNoDeadline(0);
    FrameTask b = taskNoDeadline(1);
    FrameTask c = taskNoDeadline(2);
    EXPECT_TRUE(q.tryPush(a));
    EXPECT_TRUE(q.tryPush(b));
    EXPECT_FALSE(q.tryPush(c));
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.stats().high_water, 2u);
}

TEST(EdfQueue, CloseDrainsThenReturnsNullopt)
{
    EdfQueue q(4);
    ASSERT_TRUE(q.push(taskWithDeadline(0, std::chrono::milliseconds(9))));
    ASSERT_TRUE(q.push(taskWithDeadline(1, std::chrono::milliseconds(3))));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(taskNoDeadline(7)));
    EXPECT_EQ(q.stats().rejected, 1u);
    EXPECT_EQ(q.pop()->index, 1);
    EXPECT_EQ(q.pop()->index, 0);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(EdfQueue, CloseWakesBlockedConsumer)
{
    EdfQueue q(2);
    std::thread consumer([&q] { EXPECT_FALSE(q.pop().has_value()); });
    q.close();
    consumer.join();
}

} // namespace
} // namespace rpx::fleet
