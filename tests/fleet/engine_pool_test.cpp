/** @file Unit tests for the engine-permit pool. */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "fleet/engine_pool.hpp"

namespace rpx::fleet {
namespace {

TEST(EnginePool, GrantsUpToEngineCount)
{
    EnginePool pool(2, "encode");
    auto a = pool.tryAcquire();
    auto b = pool.tryAcquire();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(pool.inUse(), 2u);
    EXPECT_FALSE(pool.tryAcquire().has_value());
    a->release();
    EXPECT_EQ(pool.inUse(), 1u);
    EXPECT_TRUE(pool.tryAcquire().has_value());
}

TEST(EnginePool, ZeroEnginesRejected)
{
    EXPECT_THROW(EnginePool(0), std::invalid_argument);
}

TEST(EnginePool, LeaseReleasesOnDestruction)
{
    EnginePool pool(1);
    {
        EnginePool::Lease lease = pool.acquire();
        EXPECT_TRUE(lease.held());
        EXPECT_EQ(pool.inUse(), 1u);
    }
    EXPECT_EQ(pool.inUse(), 0u);
    EXPECT_EQ(pool.stats().acquisitions, 1u);
}

TEST(EnginePool, LeaseMoveTransfersOwnership)
{
    EnginePool pool(1);
    EnginePool::Lease a = pool.acquire();
    EnginePool::Lease b = std::move(a);
    EXPECT_FALSE(a.held());
    EXPECT_TRUE(b.held());
    EXPECT_EQ(pool.inUse(), 1u);
    b.release();
    EXPECT_EQ(pool.inUse(), 0u);
}

TEST(EnginePool, ExhaustedPoolBlocksAndCountsWait)
{
    EnginePool pool(1);
    EnginePool::Lease held = pool.acquire();
    std::thread waiter([&pool] {
        EnginePool::Lease lease = pool.acquire(); // blocks until release
    });
    // The waiter registers its wait before blocking, so this terminates.
    while (pool.stats().waits == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    held.release();
    waiter.join();
    const EnginePoolStats s = pool.stats();
    EXPECT_EQ(s.acquisitions, 2u);
    EXPECT_EQ(s.waits, 1u);
    EXPECT_EQ(s.max_in_use, 1u);
    EXPECT_EQ(pool.inUse(), 0u);
}

} // namespace
} // namespace rpx::fleet
