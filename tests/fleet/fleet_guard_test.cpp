/**
 * @file
 * Integration tests for the fleet overload-protection layer: capacity-model
 * admission (reject-with-reason, re-admission after load drops), hard-cap
 * rejection under saturation churn, deadline-aware shedding conservation,
 * and watchdog eviction of a chaos-wedged worker (no hang).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "frame/draw.hpp"

namespace rpx::fleet {
namespace {

Image
sceneFor(u32 stream_id, u64 frame)
{
    Image scene(96, 64);
    Rng rng(20'000 + 101 * stream_id + frame);
    fillValueNoise(scene, rng, 30.0, 60, 180);
    return scene;
}

std::vector<RegionLabel>
testLabels()
{
    return {{8, 8, 40, 32, 1, 1, 0}, {0, 0, 96, 64, 2, 2, 0}};
}

FleetConfig
guardFleet(u32 streams, u32 frames)
{
    FleetConfig fc;
    fc.stream.width = 96;
    fc.stream.height = 64;
    fc.streams = streams;
    fc.frames_per_stream = frames;
    fc.use_deadlines = false;
    fc.scene_source = sceneFor;
    fc.label_source = [](u32) { return testLabels(); };
    return fc;
}

/**
 * Capacity-model admission: with a configured per-frame cost the usable
 * capacity is engines * (1e6 / cost) * headroom frames/s. One engine at
 * 10 ms/frame and 0.85 headroom serves 85 fps; two 30 fps streams fit
 * (60), a third does not (90). After one stream leaves, the candidate
 * fits again (60) — the reject→re-admission cycle the satellite pins.
 */
TEST(FleetGuard, CapacityRejectThenReadmitAfterLoadDrops)
{
    FleetConfig fc = guardFleet(2, 2);
    fc.stream.fps = 30.0;
    fc.encode_engines = 1;
    fc.guard.admission.policy = guard::AdmissionPolicy::CapacityModel;
    fc.guard.admission.frame_cost_us = 10'000.0;
    fc.guard.admission.headroom = 0.85;
    FleetServer server(fc);

    const guard::AdmissionResult rejected = server.tryAddStream();
    EXPECT_FALSE(rejected.admitted());
    EXPECT_EQ(rejected.outcome, guard::AdmissionOutcome::RejectedCapacity);
    EXPECT_DOUBLE_EQ(rejected.demand_fps, 90.0);
    EXPECT_DOUBLE_EQ(rejected.capacity_fps, 85.0);
    EXPECT_NE(rejected.reason.find("demand"), std::string::npos);

    // The throwing legacy entry point refuses the same verdict.
    EXPECT_THROW(server.addStream(), std::runtime_error);

    // Load drops: one stream leaves pre-run, the candidate now fits.
    ASSERT_TRUE(server.removeStream(1));
    const guard::AdmissionResult admitted = server.tryAddStream();
    ASSERT_TRUE(admitted.admitted());
    EXPECT_DOUBLE_EQ(admitted.demand_fps, 60.0);

    const FleetReport rep = server.run();
    EXPECT_EQ(rep.admission_rejects, 2u);
    EXPECT_EQ(rep.streams_started, 3u);
    // Streams 0 and the replacement ran; stream 1 left before seeding.
    EXPECT_EQ(rep.frames, 4u);
    EXPECT_EQ(rep.errors, 0u);
}

/**
 * Hard-cap admission under saturation churn: a full fleet (max_streams
 * reached, 1+1 engines) refuses joiners with an explicit reason while
 * frames are in flight; a slot freed by removeStream admits the next
 * attempt. Add/remove race the stage workers via the frame sink and the
 * retirement hook — the satellite's removeStream/addStream race case.
 */
TEST(FleetGuard, HardCapRejectsUnderSaturationUntilSlotFrees)
{
    FleetConfig fc = guardFleet(4, 3);
    fc.max_streams = 4;
    fc.encode_engines = 1;
    fc.decode_engines = 1;
    fc.capture_workers = 1;

    FleetServer *server_ptr = nullptr;
    std::atomic<bool> rejected_while_full{false};
    std::atomic<bool> removed{false};
    std::atomic<u32> replacement_id{0};
    fc.frame_sink = [&](StreamContext &s, const PipelineFrameResult &r) {
        // While all four slots are live, a joiner must bounce off the cap.
        if (s.id() == 0 && r.index == 0 &&
            !rejected_while_full.exchange(true)) {
            const guard::AdmissionResult res = server_ptr->tryAddStream();
            EXPECT_FALSE(res.admitted());
            EXPECT_EQ(res.outcome,
                      guard::AdmissionOutcome::RejectedHardCap);
            EXPECT_NE(res.reason.find("max_streams"), std::string::npos);
        }
        if (s.id() == 1 && r.index == 0 && !removed.exchange(true)) {
            EXPECT_TRUE(server_ptr->removeStream(1));
        }
    };
    fc.stream_retired = [&](const FleetStreamReport &sr) {
        // The freed slot admits the joiner that was refused above.
        if (sr.id == 1) {
            const guard::AdmissionResult res = server_ptr->tryAddStream();
            ASSERT_TRUE(res.admitted());
            replacement_id = res.id;
        }
    };
    FleetServer server(fc);
    server_ptr = &server;
    const FleetReport rep = server.run();

    ASSERT_TRUE(rejected_while_full.load());
    ASSERT_TRUE(removed.load());
    EXPECT_EQ(rep.admission_rejects, 1u);
    EXPECT_EQ(rep.streams_started, 5u);
    std::map<u32, FleetStreamReport> by_id;
    for (const auto &s : rep.streams)
        by_id[s.id] = s;
    EXPECT_EQ(by_id.at(1).frames, 1u);
    EXPECT_FALSE(by_id.at(1).completed);
    EXPECT_EQ(by_id.at(replacement_id.load()).frames, 3u);
    EXPECT_TRUE(by_id.at(replacement_id.load()).completed);
    // Conservation across the churn: 3 full streams + 1 cut short + the
    // replacement's full target.
    EXPECT_EQ(rep.frames, 3u * 3u + 1u + 3u);
    EXPECT_EQ(rep.errors, 0u);
}

/**
 * Shedding conservation: with an unserviceable period (1 GHz fps), every
 * frame is past its deadline at dequeue, so the shedder routes all of
 * them through hold-last-good *before* the engine lease. Shed is
 * first-class: every frame is accounted exactly once (report == journal
 * == registry), deadline_misses stays zero (shed ≠ miss), the vision
 * sink sees only decoded frames (shed ≠ delivered), and no traffic is
 * generated because no frame reached the store.
 */
TEST(FleetGuard, ShedAllFramesKeepsAccountingExact)
{
    constexpr u32 kStreams = 3;
    constexpr u32 kFrames = 4;
    obs::ObsContext obs;
    FleetConfig fc = guardFleet(kStreams, kFrames);
    fc.stream.obs = &obs;
    fc.stream.fps = 1e9;
    fc.use_deadlines = true;
    // Keep the ladder out of reach so shedding is the only actor.
    fc.stream.fault.degradation.escalate_after_misses = 1'000'000'000;
    fc.guard.shed.enabled = true;
    fc.guard.shed.slack_ms = 0.0;

    std::atomic<u64> sink_frames{0};
    fc.frame_sink = [&](StreamContext &, const PipelineFrameResult &) {
        sink_frames.fetch_add(1);
    };
    FleetServer server(fc);
    const FleetReport rep = server.run();

    EXPECT_EQ(rep.frames, u64{kStreams} * kFrames);
    EXPECT_EQ(rep.shed_frames, rep.frames);
    EXPECT_EQ(rep.deadline_misses, 0u);
    EXPECT_EQ(rep.errors, 0u);
    // The vision sink delivers decoded frames only; a shed frame is
    // accounted in journal/registry/report instead.
    EXPECT_EQ(sink_frames.load(), 0u);
    EXPECT_EQ(obs.registry().counter("pipeline.shed_frames").value(),
              rep.shed_frames);
    // Encode-point sheds never touch the store: zero model traffic, and
    // every served frame is hold-last-good (kept fraction 0).
    EXPECT_EQ(rep.bytes_written, 0u);
    EXPECT_EQ(rep.metadata_bytes, 0u);
    EXPECT_DOUBLE_EQ(rep.kept_fraction_mean, 0.0);

    u64 per_stream_shed = 0;
    for (const FleetStreamReport &s : rep.streams) {
        EXPECT_EQ(s.shed, s.frames);
        EXPECT_TRUE(s.completed);
        // All-shed streams sit in Degraded (dirty but decoding fine).
        EXPECT_EQ(s.health, guard::HealthState::Degraded);
        per_stream_shed += s.shed;
    }
    EXPECT_EQ(per_stream_shed, rep.shed_frames);
}

/**
 * Watchdog eviction: chaos wedges every decode worker pass for 200 ms
 * while the watchdog evicts any stream whose frame has been in flight
 * for 60 ms. run() must return (no hang), the wedged streams must be
 * evicted with Evicted health, and their in-flight frames must still
 * retire through normal accounting (errors stay zero, per-stream frame
 * counts sum to the fleet total).
 */
TEST(FleetGuard, WatchdogEvictsWedgedStreamsWithoutHang)
{
    FleetConfig fc = guardFleet(2, 5);
    fc.chaos.enabled = true;
    fc.chaos.seed = 7;
    fc.chaos.worker_stall_rate = 1.0;
    fc.chaos.worker_stall_us = 200'000;
    fc.guard.watchdog.enabled = true;
    fc.guard.watchdog.interval_ms = 5;
    fc.guard.watchdog.warn_ms = 15;
    fc.guard.watchdog.quarantine_ms = 30;
    fc.guard.watchdog.evict_ms = 60;

    FleetServer server(fc);
    const FleetReport rep = server.run(); // must terminate

    EXPECT_GE(rep.watchdog_evictions, 1u);
    EXPECT_GE(rep.watchdog_warns, 1u);
    EXPECT_GE(rep.chaos_hits, 1u);
    EXPECT_EQ(rep.errors, 0u);
    EXPECT_LT(rep.streams_completed, 2u);

    u64 per_stream_frames = 0;
    u64 evicted = 0;
    for (const FleetStreamReport &s : rep.streams) {
        per_stream_frames += s.frames;
        if (s.evicted) {
            ++evicted;
            EXPECT_EQ(s.health, guard::HealthState::Evicted);
            EXPECT_FALSE(s.completed);
            // The wedged frame itself still completed and was counted.
            EXPECT_GE(s.frames, 1u);
        }
    }
    EXPECT_EQ(evicted, rep.watchdog_evictions);
    EXPECT_EQ(per_stream_frames, rep.frames);
}

} // namespace
} // namespace rpx::fleet
