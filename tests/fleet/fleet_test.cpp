/**
 * @file
 * Integration tests for the multi-stream fleet server: byte-identity of a
 * 1-stream fleet against the legacy pipeline, engine-pool starvation,
 * all-streams-miss deadline escalation, stream join/leave mid-run, and
 * per-stream telemetry conservation against the shared registry.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "frame/draw.hpp"
#include "sim/pipeline.hpp"

namespace rpx::fleet {
namespace {

Image
testScene(i32 w, i32 h, u64 seed)
{
    Image scene(w, h);
    Rng rng(seed);
    fillValueNoise(scene, rng, 30.0, 60, 180);
    return scene;
}

/** Deterministic per-(stream, frame) scene, shared by fleet and legacy. */
Image
sceneFor(u32 stream_id, u64 frame)
{
    return testScene(96, 64, 10'000 + 97 * stream_id + frame);
}

std::vector<RegionLabel>
testLabels()
{
    // Two overlapping regions with distinct spatial and temporal rhythm,
    // so history decode and skip logic are both exercised.
    return {{8, 8, 40, 32, 1, 1, 0}, {0, 0, 96, 64, 2, 2, 0}};
}

PipelineConfig
smallStream()
{
    PipelineConfig pc;
    pc.width = 96;
    pc.height = 64;
    return pc;
}

FleetConfig
smallFleet(u32 streams, u32 frames)
{
    FleetConfig fc;
    fc.stream = smallStream();
    fc.streams = streams;
    fc.frames_per_stream = frames;
    fc.use_deadlines = false;
    fc.scene_source = sceneFor;
    fc.label_source = [](u32) { return testLabels(); };
    return fc;
}

void
expectTotalsEqual(const obs::TelemetryTotals &a,
                  const obs::TelemetryTotals &b)
{
    EXPECT_EQ(a.frames, b.frames);
    EXPECT_EQ(a.pixels_in, b.pixels_in);
    EXPECT_EQ(a.pixels_kept, b.pixels_kept);
    EXPECT_EQ(a.bytes_written, b.bytes_written);
    EXPECT_EQ(a.bytes_read, b.bytes_read);
    EXPECT_EQ(a.metadata_bytes, b.metadata_bytes);
    EXPECT_EQ(a.region_comparisons, b.region_comparisons);
    EXPECT_EQ(a.compare_cycles, b.compare_cycles);
    EXPECT_EQ(a.stream_cycles, b.stream_cycles);
    EXPECT_EQ(a.quarantined_frames, b.quarantined_frames);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    EXPECT_EQ(a.transient_faults, b.transient_faults);
    EXPECT_DOUBLE_EQ(a.energy_total_nj, b.energy_total_nj);
}

TEST(Fleet, OneStreamFleetMatchesLegacyPipelineByteIdentical)
{
    constexpr u32 kFrames = 6;

    // Legacy: the facade (formerly the monolithic processFrame).
    obs::ObsContext legacy_obs;
    obs::TelemetrySink legacy_sink;
    PipelineConfig pc = smallStream();
    pc.obs = &legacy_obs;
    pc.telemetry = &legacy_sink;
    VisionPipeline legacy(pc);
    legacy.runtime().setRegionLabels(testLabels());
    std::vector<Image> legacy_frames;
    std::vector<double> legacy_kept;
    for (u32 f = 0; f < kFrames; ++f) {
        auto r = legacy.processFrame(sceneFor(0, f));
        legacy_frames.push_back(std::move(r.decoded));
        legacy_kept.push_back(r.kept_fraction);
    }

    // Fleet: one stream, deadlines off, through queues and engine pools.
    obs::ObsContext fleet_obs;
    obs::TelemetrySink fleet_sink;
    FleetConfig fc = smallFleet(1, kFrames);
    fc.stream.obs = &fleet_obs;
    fc.stream.telemetry = &fleet_sink;
    std::mutex sink_mutex;
    std::map<FrameIndex, Image> fleet_frames;
    fc.frame_sink = [&](StreamContext &, const PipelineFrameResult &r) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        fleet_frames[r.index] = r.decoded;
    };
    FleetServer server(fc);
    const FleetReport rep = server.run();

    ASSERT_EQ(rep.frames, kFrames);
    EXPECT_EQ(rep.errors, 0u);
    EXPECT_EQ(rep.deadline_misses, 0u);
    ASSERT_EQ(fleet_frames.size(), kFrames);
    for (u32 f = 0; f < kFrames; ++f)
        EXPECT_EQ(fleet_frames.at(f), legacy_frames[f])
            << "decoded frame " << f << " diverged";

    // Telemetry totals reconcile exactly (stream label does not enter
    // the sums), and the fleet journal is keyed by "s0".
    expectTotalsEqual(fleet_sink.totals(), legacy_sink.totals());
    const auto per_stream = fleet_sink.perStreamTotals();
    ASSERT_EQ(per_stream.size(), 1u);
    ASSERT_TRUE(per_stream.count("s0"));
    expectTotalsEqual(per_stream.at("s0"), legacy_sink.totals());

    // Registry counters match the legacy registry counter for counter.
    for (const char *name :
         {"pipeline.frames", "pipeline.bytes_written",
          "pipeline.bytes_read", "pipeline.metadata_bytes",
          "pipeline.quarantined_frames", "pipeline.deadline_misses",
          "pipeline.transient_faults"}) {
        EXPECT_EQ(fleet_obs.registry().counter(name).value(),
                  legacy_obs.registry().counter(name).value())
            << name;
    }
    // Kept fraction per frame matched the legacy run.
    const auto frames = fleet_sink.frames();
    ASSERT_EQ(frames.size(), kFrames);
    for (u32 f = 0; f < kFrames; ++f) {
        EXPECT_EQ(frames[f].stream, "s0");
        EXPECT_EQ(frames[f].index, f);
    }
    EXPECT_DOUBLE_EQ(rep.kept_fraction_mean,
                     std::accumulate(legacy_kept.begin(),
                                     legacy_kept.end(), 0.0) /
                         kFrames);
}

TEST(Fleet, EnginePoolStarvationStillCompletesAllStreams)
{
    // 6 streams share ONE encode and ONE decode engine, with more workers
    // than engines, so workers contend for permits.
    FleetConfig fc = smallFleet(6, 2);
    fc.encode_engines = 1;
    fc.decode_engines = 1;
    fc.encode_workers = 3;
    fc.decode_workers = 2;
    fc.capture_workers = 2;
    FleetServer server(fc);
    const FleetReport rep = server.run();

    EXPECT_EQ(rep.frames, 12u);
    EXPECT_EQ(rep.errors, 0u);
    EXPECT_EQ(rep.streams_completed, 6u);
    // Every frame acquired each engine exactly once, and the permit
    // ceiling was never breached.
    EXPECT_EQ(rep.encode_engines.acquisitions, 12u);
    EXPECT_EQ(rep.decode_engines.acquisitions, 12u);
    EXPECT_EQ(rep.encode_engines.max_in_use, 1u);
    EXPECT_EQ(rep.decode_engines.max_in_use, 1u);
}

TEST(Fleet, AllStreamsMissingDeadlinesEscalatePerStream)
{
    // An absurd frame rate makes every deadline unmeetable, so every
    // frame misses and each stream walks its own ladder to the bottom.
    FleetConfig fc = smallFleet(3, 8);
    fc.use_deadlines = true;
    fc.stream.fps = 1e9;
    FleetServer server(fc);
    const FleetReport rep = server.run();

    EXPECT_EQ(rep.frames, 24u);
    EXPECT_EQ(rep.deadline_misses, 24u);
    ASSERT_EQ(rep.streams.size(), 3u);
    for (const FleetStreamReport &s : rep.streams) {
        EXPECT_EQ(s.frames, 8u);
        EXPECT_EQ(s.deadline_misses, 8u);
        // escalate_after_misses=2, max_level=3: 8 straight misses pin
        // the stream at the deepest degradation level.
        EXPECT_EQ(s.degradation_level, 3);
    }
    // Degradation shrinks the kept fraction versus a miss-free run.
    FleetConfig relaxed = smallFleet(3, 8);
    FleetServer relaxed_server(relaxed);
    const FleetReport relaxed_rep = relaxed_server.run();
    EXPECT_EQ(relaxed_rep.deadline_misses, 0u);
    EXPECT_LT(rep.kept_fraction_mean, relaxed_rep.kept_fraction_mean);
}

TEST(Fleet, StreamsJoinAndLeaveMidRun)
{
    FleetConfig fc = smallFleet(2, 6);
    std::atomic<bool> joined{false};
    std::atomic<u32> join_id{0};
    FleetServer *server_ptr = nullptr;
    fc.frame_sink = [&](StreamContext &s, const PipelineFrameResult &r) {
        if (s.id() == 0 && r.index == 1 && !joined.exchange(true))
            join_id = server_ptr->addStream();
        if (s.id() == 1 && r.index == 0) {
            EXPECT_TRUE(server_ptr->removeStream(1));
        }
    };
    FleetServer server(fc);
    server_ptr = &server;
    const FleetReport rep = server.run();

    EXPECT_EQ(rep.streams_started, 3u);
    ASSERT_TRUE(joined.load());
    std::map<u32, FleetStreamReport> by_id;
    for (const auto &s : rep.streams)
        by_id[s.id] = s;
    // The removed stream stopped after its in-flight frame.
    EXPECT_EQ(by_id.at(1).frames, 1u);
    EXPECT_FALSE(by_id.at(1).completed);
    // The joined stream ran its full target.
    EXPECT_EQ(by_id.at(join_id.load()).frames, 6u);
    EXPECT_TRUE(by_id.at(join_id.load()).completed);
    EXPECT_EQ(by_id.at(0).frames, 6u);
    EXPECT_EQ(rep.frames, 6u + 1u + 6u);
    // Removing an already-finished stream is refused.
    EXPECT_FALSE(server.removeStream(1));
    EXPECT_FALSE(server.removeStream(999));
}

/**
 * Regression: mid-run removeStream with an in-flight frame, under fault
 * injection, with a replacement stream added from the retirement hook.
 * The departing stream's last frame must land in the journal (telemetry
 * conservation holds across leave), the retirement hook must fire for
 * every stream with its final per-stream report, and the retired
 * stream's context must be released (stream() goes null).
 */
TEST(Fleet, ChurnUnderFaultInjectionConservesTelemetry)
{
    obs::ObsContext obs;
    obs::TelemetrySink sink;
    fault::FaultPlan plan;
    plan.seed = 4242;
    plan.at(fault::Stage::Dma).drop_rate = 0.2;       // transient retries
    plan.at(fault::Stage::FrameMeta).byte_error_rate = 2e-4; // quarantine
    FleetConfig fc = smallFleet(4, 6);
    fc.stream.obs = &obs;
    fc.stream.telemetry = &sink;
    fc.stream.fault.plan = &plan;
    fc.stream.fault.graceful = true;
    fc.stream.fault.crc_metadata = true;

    FleetServer *server_ptr = nullptr;
    std::atomic<bool> removed{false};
    std::atomic<u32> replacement_id{0};
    std::mutex retired_mutex;
    std::map<u32, FleetStreamReport> retired;
    fc.frame_sink = [&](StreamContext &s, const PipelineFrameResult &r) {
        // Stream 1 leaves after its first frame completes; the sink runs
        // before completion accounting, so that frame is its last.
        if (s.id() == 1 && r.index == 0 && !removed.exchange(true)) {
            EXPECT_TRUE(server_ptr->removeStream(1));
        }
    };
    fc.stream_retired = [&](const FleetStreamReport &sr) {
        {
            std::lock_guard<std::mutex> lock(retired_mutex);
            EXPECT_FALSE(retired.count(sr.id)) << "double retirement";
            retired[sr.id] = sr;
        }
        // The departed stream is replaced from the hook — the shutdown
        // re-check must keep the fleet open for the newcomer even when
        // it was momentarily the only live stream.
        if (sr.id == 1)
            replacement_id = server_ptr->addStream();
    };
    FleetServer server(fc);
    server_ptr = &server;
    const FleetReport rep = server.run();

    ASSERT_TRUE(removed.load());
    EXPECT_EQ(rep.streams_started, 5u);
    EXPECT_EQ(rep.errors, 0u); // graceful mode contains every fault
    std::map<u32, FleetStreamReport> by_id;
    for (const auto &s : rep.streams)
        by_id[s.id] = s;
    EXPECT_EQ(by_id.at(1).frames, 1u);
    EXPECT_FALSE(by_id.at(1).completed);
    EXPECT_EQ(by_id.at(replacement_id.load()).frames, 6u);
    EXPECT_EQ(rep.frames, 3u * 6u + 1u + 6u);

    // Retirement hook fired once per stream with the final counts.
    ASSERT_EQ(retired.size(), 5u);
    for (const auto &s : rep.streams) {
        ASSERT_TRUE(retired.count(s.id)) << "stream " << s.id;
        EXPECT_EQ(retired.at(s.id).frames, s.frames);
        EXPECT_EQ(retired.at(s.id).label, s.label);
        EXPECT_EQ(retired.at(s.id).completed, s.completed);
    }

    // Retired contexts are released — join/leave churn cannot accumulate
    // dead streams.
    EXPECT_EQ(server.stream(1), nullptr);

    // The removed stream's frame is in the journal: telemetry
    // conservation holds across leave, faults and all.
    const auto per_stream = sink.perStreamTotals();
    ASSERT_TRUE(per_stream.count("s1"));
    EXPECT_EQ(per_stream.at("s1").frames, 1u);
    u64 frames = 0, quarantined = 0, transients = 0;
    Bytes written = 0, read = 0, meta = 0;
    for (const auto &[label, totals] : per_stream) {
        frames += totals.frames;
        quarantined += totals.quarantined_frames;
        transients += totals.transient_faults;
        written += totals.bytes_written;
        read += totals.bytes_read;
        meta += totals.metadata_bytes;
    }
    EXPECT_EQ(frames, rep.frames);
    obs::PerfRegistry &r = obs.registry();
    EXPECT_EQ(r.counter("pipeline.frames").value(), frames);
    EXPECT_EQ(r.counter("pipeline.quarantined_frames").value(),
              quarantined);
    EXPECT_EQ(r.counter("pipeline.transient_faults").value(), transients);
    EXPECT_EQ(r.counter("pipeline.bytes_written").value(),
              static_cast<u64>(written));
    EXPECT_EQ(r.counter("pipeline.bytes_read").value(),
              static_cast<u64>(read));
    EXPECT_EQ(r.counter("pipeline.metadata_bytes").value(),
              static_cast<u64>(meta));
    EXPECT_EQ(rep.quarantined, quarantined);
    EXPECT_EQ(rep.transient_faults, transients);
}

/**
 * drain(): every stream stops after its in-flight frame; run() returns
 * with partial frame counts and completed=false for the cut-short ones.
 */
TEST(Fleet, DrainStopsAllStreamsAfterInFlightFrames)
{
    FleetConfig fc = smallFleet(3, 1000); // would run ~forever
    FleetServer *server_ptr = nullptr;
    std::atomic<bool> drained{false};
    fc.frame_sink = [&](StreamContext &s, const PipelineFrameResult &r) {
        if (s.id() == 0 && r.index == 2 && !drained.exchange(true))
            server_ptr->drain();
    };
    FleetServer server(fc);
    server_ptr = &server;
    const FleetReport rep = server.run();
    ASSERT_TRUE(drained.load());
    EXPECT_EQ(rep.streams_completed, 0u);
    // Every stream stopped almost immediately after the drain call: at
    // most its in-flight frame plus one it resubmitted concurrently.
    EXPECT_LT(rep.frames, 3u * 16u);
    for (const auto &s : rep.streams) {
        EXPECT_GE(s.frames, 1u);
        EXPECT_FALSE(s.completed);
    }
}

/**
 * Satellite (f): per-stream journal totals sum to the shared registry's
 * pipeline.* counters — serial and parallel worker configurations alike.
 */
class FleetConservation : public ::testing::TestWithParam<bool>
{
};

TEST_P(FleetConservation, PerStreamTotalsSumToRegistryCounters)
{
    const bool parallel = GetParam();
    obs::ObsContext obs;
    obs::TelemetrySink sink;
    FleetConfig fc = smallFleet(4, 5);
    fc.stream.obs = &obs;
    fc.stream.telemetry = &sink;
    if (parallel) {
        fc.capture_workers = 2;
        fc.encode_engines = 4;
        fc.decode_engines = 4;
    } else {
        fc.capture_workers = 1;
        fc.encode_engines = 1;
        fc.decode_engines = 1;
    }
    FleetServer server(fc);
    const FleetReport rep = server.run();
    ASSERT_EQ(rep.frames, 20u);
    ASSERT_EQ(rep.errors, 0u);

    const auto per_stream = sink.perStreamTotals();
    ASSERT_EQ(per_stream.size(), 4u);
    obs::TelemetryTotals sum;
    for (const auto &[label, totals] : per_stream) {
        EXPECT_EQ(label.rfind("s", 0), 0u) << label;
        sum.frames += totals.frames;
        sum.pixels_in += totals.pixels_in;
        sum.pixels_kept += totals.pixels_kept;
        sum.bytes_written += totals.bytes_written;
        sum.bytes_read += totals.bytes_read;
        sum.metadata_bytes += totals.metadata_bytes;
        sum.quarantined_frames += totals.quarantined_frames;
        sum.deadline_misses += totals.deadline_misses;
        sum.transient_faults += totals.transient_faults;
    }
    expectTotalsEqual(sink.totals(), [&] {
        obs::TelemetryTotals t = sink.totals();
        // Only the summable fields are compared below; start from the
        // full totals so the energy/cycle fields trivially match.
        t.frames = sum.frames;
        t.pixels_in = sum.pixels_in;
        t.pixels_kept = sum.pixels_kept;
        t.bytes_written = sum.bytes_written;
        t.bytes_read = sum.bytes_read;
        t.metadata_bytes = sum.metadata_bytes;
        t.quarantined_frames = sum.quarantined_frames;
        t.deadline_misses = sum.deadline_misses;
        t.transient_faults = sum.transient_faults;
        return t;
    }());

    // Journal totals == registry counters (the conservation invariant).
    obs::PerfRegistry &r = obs.registry();
    EXPECT_EQ(r.counter("pipeline.frames").value(), sum.frames);
    EXPECT_EQ(r.counter("pipeline.bytes_written").value(),
              static_cast<u64>(sum.bytes_written));
    EXPECT_EQ(r.counter("pipeline.bytes_read").value(),
              static_cast<u64>(sum.bytes_read));
    EXPECT_EQ(r.counter("pipeline.metadata_bytes").value(),
              static_cast<u64>(sum.metadata_bytes));
    EXPECT_EQ(r.counter("pipeline.quarantined_frames").value(),
              sum.quarantined_frames);
    EXPECT_EQ(r.counter("pipeline.deadline_misses").value(),
              sum.deadline_misses);
    EXPECT_EQ(r.counter("pipeline.transient_faults").value(),
              sum.transient_faults);
    // And the fleet report agrees with both.
    EXPECT_EQ(rep.bytes_written, sum.bytes_written);
    EXPECT_EQ(rep.bytes_read, sum.bytes_read);
    EXPECT_EQ(rep.metadata_bytes, sum.metadata_bytes);
}

INSTANTIATE_TEST_SUITE_P(SerialAndParallel, FleetConservation,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "Parallel" : "Serial";
                         });

TEST(Fleet, ReportJsonIsWellFormed)
{
    FleetConfig fc = smallFleet(2, 2);
    FleetServer server(fc);
    const FleetReport rep = server.run();
    const std::string text = toJson(rep);
    EXPECT_NE(text.find("\"schema\": \"rpx-fleet-report-v1\""),
              std::string::npos);
    EXPECT_NE(text.find("\"frames\": 4"), std::string::npos);
    EXPECT_NE(text.find("\"label\": \"s0\""), std::string::npos);
}

TEST(Fleet, RejectsInvalidConfigs)
{
    FleetConfig fc = smallFleet(1, 0);
    EXPECT_THROW(FleetServer{fc}, std::invalid_argument);
    FleetConfig no_scene = smallFleet(1, 1);
    no_scene.scene_source = nullptr;
    FleetServer server(no_scene);
    EXPECT_THROW(server.run(), std::invalid_argument);
    FleetConfig bad_fps = smallFleet(1, 1);
    bad_fps.use_deadlines = true;
    bad_fps.stream.fps = 0.0;
    EXPECT_THROW(FleetServer{bad_fps}, std::invalid_argument);
}

TEST(Fleet, RunIsSingleShot)
{
    FleetConfig fc = smallFleet(1, 1);
    FleetServer server(fc);
    (void)server.run();
    EXPECT_THROW(server.run(), std::runtime_error);
}

} // namespace
} // namespace rpx::fleet
