/**
 * @file
 * Human-pose-estimation example (PoseTrack-like): walkers cross the frame;
 * regions follow the tracked person boxes, sampled at rates matched to
 * their motion.
 *
 * Run:  ./pose_estimation [frames]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiments.hpp"
#include "sim/workload.hpp"

using namespace rpx;

int
main(int argc, char **argv)
{
    PoseSequenceConfig seq;
    seq.width = 960;
    seq.height = 540;
    seq.frames = argc > 1 ? std::atoi(argv[1]) : 60;
    seq.persons = 2;

    std::cout << "Pose estimation on " << seq.width << "x" << seq.height
              << ", " << seq.frames << " frames, " << seq.persons
              << " persons\n\n";

    TextTable table(
        {"scheme", "mAP%", "recall%", "PCK%", "kept%", "DDR MB/s"});
    for (int cl : {5, 10, 15}) {
        WorkloadConfig wc;
        wc.scheme = CaptureScheme::RP;
        wc.cycle_length = cl;
        const DetectionRunResult run = runPoseWorkload(seq, wc);

        double kept = 0.0;
        for (double k : run.kept_per_frame)
            kept += k;
        kept /= static_cast<double>(run.kept_per_frame.size());

        table.addRow({
            run.scheme_name,
            fmtDouble(run.map_percent, 1),
            fmtDouble(run.recall_percent, 1),
            fmtDouble(run.pck_percent, 1),
            fmtDouble(100.0 * kept, 1),
            fmtDouble(run.pipeline_traffic.throughputMBps(run.fps), 1),
        });
    }
    WorkloadConfig fch;
    fch.scheme = CaptureScheme::FCH;
    const DetectionRunResult run = runPoseWorkload(seq, fch);
    table.addRow({run.scheme_name, fmtDouble(run.map_percent, 1),
                  fmtDouble(run.recall_percent, 1),
                  fmtDouble(run.pck_percent, 1), "100.0",
                  fmtDouble(run.pipeline_traffic.throughputMBps(run.fps),
                            1)});
    std::cout << table.render();
    std::cout << "\nHigher cycle lengths discard more pixels but let\n"
                 "tracking error accumulate between full captures.\n";
    return 0;
}
