/**
 * @file
 * Face-detection example (ChokePoint-like portal scenario): subjects walk
 * through a doorway; regions follow their faces via the Kalman box policy.
 *
 * Run:  ./face_detection [frames]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiments.hpp"
#include "sim/workload.hpp"

using namespace rpx;

int
main(int argc, char **argv)
{
    FaceSequenceConfig seq;
    seq.frames = argc > 1 ? std::atoi(argv[1]) : 60;
    seq.subjects = 3;

    std::cout << "Face detection on " << seq.width << "x" << seq.height
              << ", " << seq.frames << " frames, "
              << seq.subjects << " subjects\n\n";

    TextTable table({"scheme", "mAP%", "recall%", "kept%", "DDR MB/s",
                     "footprint MB"});
    for (const auto &point : paperSchemeSweep()) {
        if (point.scheme == CaptureScheme::RP && point.cycle_length != 10)
            continue; // keep the example short: one RP point
        WorkloadConfig wc;
        wc.scheme = point.scheme;
        wc.cycle_length =
            point.cycle_length > 0 ? point.cycle_length : 10;
        const DetectionRunResult run = runFaceWorkload(seq, wc);

        double kept = 0.0;
        for (double k : run.kept_per_frame)
            kept += k;
        kept /= static_cast<double>(run.kept_per_frame.size());

        table.addRow({
            run.scheme_name,
            fmtDouble(run.map_percent, 1),
            fmtDouble(run.recall_percent, 1),
            fmtDouble(100.0 * kept, 1),
            fmtDouble(run.pipeline_traffic.throughputMBps(run.fps), 1),
            fmtDouble(run.pipeline_traffic.footprintMB(), 2),
        });
    }
    std::cout << table.render();
    return 0;
}
