/**
 * @file
 * V-SLAM example (the paper's §3.4 case study): track a camera through a
 * synthetic room with rhythmic pixel regions guided by ORB feature
 * attributes, and compare accuracy/traffic against frame-based capture.
 *
 * Run:  ./slam_tracking [frames]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiments.hpp"
#include "sim/workload.hpp"

using namespace rpx;

int
main(int argc, char **argv)
{
    SlamSequenceConfig seq;
    seq.width = 640;
    seq.height = 480;
    seq.frames = argc > 1 ? std::atoi(argv[1]) : 60;
    seq.profile = MotionProfile::Gentle;

    std::cout << "V-SLAM on " << seq.width << "x" << seq.height << ", "
              << seq.frames << " frames\n\n";

    TextTable table({"scheme", "ATE(mm)", "RPE-t(mm)", "RPE-r(deg)",
                     "kept%", "DDR MB/s", "footprint MB"});

    for (const auto scheme :
         {CaptureScheme::FCH, CaptureScheme::FCL, CaptureScheme::RP}) {
        WorkloadConfig wc;
        wc.scheme = scheme;
        wc.cycle_length = 10;
        const SlamRunResult run = runSlamWorkload(seq, wc);

        double kept = 0.0;
        for (double k : run.kept_per_frame)
            kept += k;
        kept /= static_cast<double>(run.kept_per_frame.size());

        table.addRow({
            run.scheme_name,
            fmtDouble(run.metrics.ate_mean * 1000.0, 1),
            fmtDouble(run.metrics.rpe_trans_mean * 1000.0, 1),
            fmtDouble(run.metrics.rpe_rot_mean_deg, 3),
            fmtDouble(100.0 * kept, 1),
            fmtDouble(run.pipeline_traffic.throughputMBps(run.fps), 1),
            fmtDouble(run.pipeline_traffic.footprintMB(), 2),
        });
    }
    std::cout << table.render();
    std::cout << "\nRP = rhythmic pixel regions with cycle length 10; the\n"
                 "feature policy derives region size from feature size,\n"
                 "stride from octave, and skip from feature velocity.\n";
    return 0;
}
