/**
 * @file
 * Command-line driver for the evaluation harness: run any workload under
 * any capture scheme, export the region trace, or replay a saved trace
 * through the throughput simulator at an arbitrary resolution — with
 * optional observability output (Chrome-trace stage spans, metric
 * snapshots, log level).
 *
 * Usage:
 *   rpx_cli run   --task slam|face|pose --scheme FCH|FCL|RP|MULTIROI
 *                 [--cycle N] [--frames N] [--encoder-threads N]
 *                 [--decoder-threads N] [--region-trace-out FILE]
 *                 [--trace-out FILE] [--metrics-out FILE]
 *                 [--journal-out FILE]
 *                 [--streams N] [--fleet-report FILE]
 *                 [--log-level debug|info|warn|silent]
 *   rpx_cli replay --trace FILE --scheme FCH|FCL|RP|H264|MULTIROI
 *                 [--width N --height N] [--fps F]
 *                 [--trace-out FILE] [--metrics-out FILE]
 *                 [--log-level debug|info|warn|silent]
 *
 * --trace-out writes a chrome://tracing / Perfetto-compatible JSON of
 * per-frame pipeline stage spans; --metrics-out writes a counter/gauge/
 * histogram snapshot (JSON, or CSV when the file ends in ".csv");
 * --journal-out (run only) streams one JSON line per processed frame with
 * stage latencies, traffic, energy, and per-region attribution (the
 * "rpx-frame-telemetry-v1" schema, see src/obs/telemetry.hpp).
 *
 * --streams N (run only) switches to the multi-stream fleet path: N
 * synthetic camera streams share the engine pool under EDF scheduling
 * (src/fleet/fleet.hpp), each stream running --frames frames. The
 * journal then carries one line per frame with a per-stream "s<id>"
 * label, and --fleet-report writes the aggregate rpx-fleet-report-v1
 * JSON (per-stream frame counts, deadline misses, queue/engine stats).
 */

#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include <fstream>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "fleet/fleet.hpp"
#include "frame/draw.hpp"
#include "obs/metrics_export.hpp"
#include "obs/obs.hpp"
#include "obs/telemetry.hpp"
#include "sim/experiments.hpp"
#include "sim/trace_io.hpp"
#include "sim/workload.hpp"

using namespace rpx;

namespace {

[[noreturn]] void
usage()
{
    std::cerr
        << "usage:\n"
        << "  rpx_cli run    --task slam|face|pose --scheme "
           "FCH|FCL|RP|MULTIROI [--cycle N]\n"
        << "                 [--frames N] [--encoder-threads N]\n"
        << "                 [--decoder-threads N]\n"
        << "                 [--region-trace-out FILE]\n"
        << "                 [--trace-out FILE] [--metrics-out FILE]\n"
        << "                 [--journal-out FILE]\n"
        << "                 [--streams N] [--fleet-report FILE]\n"
        << "                 [--admission hard|capacity]\n"
        << "                 [--watchdog-ms N] [--shed-slack-ms X]\n"
        << "                 [--log-level debug|info|warn|silent]\n"
        << "  rpx_cli replay --trace FILE --scheme "
           "FCH|FCL|RP|H264|MULTIROI [--width N]\n"
        << "                 [--height N] [--fps F] [--trace-out FILE]\n"
        << "                 [--metrics-out FILE]\n"
        << "                 [--log-level debug|info|warn|silent]\n";
    std::exit(2);
}

std::map<std::string, std::string>
parseFlags(int argc, char **argv, int first)
{
    std::map<std::string, std::string> flags;
    for (int i = first; i + 1 < argc; i += 2) {
        if (std::strncmp(argv[i], "--", 2) != 0)
            usage();
        flags[argv[i] + 2] = argv[i + 1];
    }
    return flags;
}

CaptureScheme
schemeFromName(const std::string &name)
{
    if (name == "FCH")
        return CaptureScheme::FCH;
    if (name == "FCL")
        return CaptureScheme::FCL;
    if (name == "RP")
        return CaptureScheme::RP;
    if (name == "H264")
        return CaptureScheme::H264;
    if (name == "MULTIROI")
        return CaptureScheme::MultiRoi;
    std::cerr << "unknown scheme: " << name << "\n";
    usage();
}

/** Apply --log-level and prepare the obs context the flags ask for. */
void
applyObsFlags(const std::map<std::string, std::string> &flags,
              obs::ObsContext &ctx)
{
    if (flags.count("log-level")) {
        setLogLevel(detail::parseLogLevel(flags.at("log-level").c_str(),
                                          logLevel()));
    }
    if (flags.count("trace-out"))
        ctx.enableTrace();
}

/** Write --trace-out / --metrics-out files after a run. */
void
exportObs(const std::map<std::string, std::string> &flags,
          const obs::ObsContext &ctx)
{
    if (flags.count("trace-out")) {
        ctx.trace()->writeJsonFile(flags.at("trace-out"));
        std::cout << "  spans:      " << flags.at("trace-out") << " ("
                  << ctx.trace()->size() << " events)\n";
    }
    if (flags.count("metrics-out")) {
        obs::writeMetricsFile(ctx.registry(), flags.at("metrics-out"));
        std::cout << "  metrics:    " << flags.at("metrics-out") << " ("
                  << ctx.registry().size() << " metrics)\n";
    }
}

/**
 * The fleet path behind `run --streams N`: N synthetic 96x64 camera
 * streams (value-noise scene with a stream-keyed moving box, foveal
 * label + coarse periphery) share the engine pool under EDF deadlines.
 */
int
fleetCommand(const std::map<std::string, std::string> &flags,
             obs::ObsContext &obs_ctx, obs::TelemetrySink *journal)
{
    constexpr i32 kW = 96;
    constexpr i32 kH = 64;

    fleet::FleetConfig fc;
    fc.stream.width = kW;
    fc.stream.height = kH;
    fc.stream.history = 2;
    fc.stream.obs = &obs_ctx;
    fc.stream.telemetry = journal;
    fc.streams = static_cast<u32>(std::stoul(flags.at("streams")));
    if (fc.streams < 1) {
        std::cerr << "error: --streams must be >= 1\n";
        return 1;
    }
    fc.frames_per_stream = static_cast<u32>(
        flags.count("frames") ? std::stoul(flags.at("frames")) : 60);
    fc.encode_engines = 8;
    fc.decode_engines = 8;

    // Overload-protection knobs (rpx::guard); all default off.
    if (flags.count("admission")) {
        const std::string &mode = flags.at("admission");
        if (mode == "capacity")
            fc.guard.admission.policy =
                guard::AdmissionPolicy::CapacityModel;
        else if (mode != "hard") {
            std::cerr << "error: --admission must be hard|capacity\n";
            return 1;
        }
    }
    if (flags.count("watchdog-ms")) {
        // One knob sets the whole escalation ladder: warn at N, force-
        // quarantine at 2N, evict at 4N, scanning every N/4 ms.
        const u32 n = static_cast<u32>(
            std::stoul(flags.at("watchdog-ms")));
        if (n < 1) {
            std::cerr << "error: --watchdog-ms must be >= 1\n";
            return 1;
        }
        fc.guard.watchdog.enabled = true;
        fc.guard.watchdog.warn_ms = n;
        fc.guard.watchdog.quarantine_ms = 2 * n;
        fc.guard.watchdog.evict_ms = 4 * n;
        fc.guard.watchdog.interval_ms = std::max<u32>(1, n / 4);
    }
    if (flags.count("shed-slack-ms")) {
        fc.guard.shed.enabled = true;
        fc.guard.shed.slack_ms = std::stod(flags.at("shed-slack-ms"));
    }
    fc.scene_source = [](u32 stream, u64 frame) {
        Image img(kW, kH);
        Rng rng(0x9E3779B9u + 7919u * stream + 131u * frame);
        fillValueNoise(img, rng, 16.0, 40, 150);
        const i32 bx =
            static_cast<i32>((stream * 5 + frame * 3) % (kW - 24));
        const i32 by =
            static_cast<i32>((stream * 3 + frame * 2) % (kH - 16));
        for (i32 y = by; y < by + 16; ++y)
            for (i32 x = bx; x < bx + 24; ++x)
                img.set(x, y, 230);
        return img;
    };
    fc.label_source = [](u32 stream) {
        const i32 bx = static_cast<i32>((stream * 5) % (kW - 32));
        const i32 by = static_cast<i32>((stream * 3) % (kH - 24));
        return std::vector<RegionLabel>{
            {bx, by, 32, 24, 1, 1, 0},
            {0, 0, kW, kH, 4, 2, 0}, // coarse periphery
        };
    };

    fleet::FleetServer server(fc);
    const fleet::FleetReport r = server.run();

    std::cout << "fleet of " << r.streams_started << " streams (" << kW
              << "x" << kH << ", " << fc.frames_per_stream
              << " frames each, EDF)\n";
    std::cout << "  frames:     " << r.frames << " ("
              << fmtDouble(r.frames_per_second, 0) << " frames/s)\n";
    std::cout << "  latency:    p50 " << fmtDouble(r.latency_p50_us, 0)
              << " us, p99 " << fmtDouble(r.latency_p99_us, 0)
              << " us, p999 " << fmtDouble(r.latency_p999_us, 0)
              << " us\n";
    std::cout << "  traffic:    "
              << fmtDouble(static_cast<double>(r.bytes_written) / 1e6, 3)
              << " MB written, kept "
              << fmtDouble(100.0 * r.kept_fraction_mean, 1) << "%\n";
    std::cout << "  schedule:   " << r.deadline_misses
              << " deadline misses, mean DMA batch "
              << fmtDouble(r.mean_store_batch, 2) << "\n";
    if (fc.guard.shed.enabled || fc.guard.watchdog.enabled ||
        fc.guard.admission.policy !=
            guard::AdmissionPolicy::HardCapOnly) {
        std::cout << "  guard:      " << r.shed_frames << " shed, "
                  << r.admission_rejects << " admission rejects, "
                  << r.watchdog_warns << " watchdog warns, "
                  << r.watchdog_evictions << " evictions, "
                  << r.health_recoveries << " health recoveries\n";
    }

    if (flags.count("fleet-report")) {
        std::ofstream out(flags.at("fleet-report"));
        out << fleet::toJson(r);
        std::cout << "  report:     " << flags.at("fleet-report") << " ("
                  << r.streams.size() << " streams)\n";
    }
    if (journal) {
        journal->flush();
        std::cout << "  journal:    " << flags.at("journal-out") << " ("
                  << journal->totals().frames << " frames)\n";
    }
    exportObs(flags, obs_ctx);
    return 0;
}

int
runCommand(const std::map<std::string, std::string> &flags)
{
    obs::ObsContext obs_ctx;
    applyObsFlags(flags, obs_ctx);

    // Per-frame telemetry journal: the sink streams one JSON line per
    // frame as the run progresses, so even aborted runs leave a journal.
    std::unique_ptr<obs::TelemetrySink> journal;
    if (flags.count("journal-out")) {
        obs::TelemetrySink::Config tc;
        tc.journal_path = flags.at("journal-out");
        tc.keep_frames = 0; // the file is the product; retain nothing
        journal = std::make_unique<obs::TelemetrySink>(tc);
    }

    if (flags.count("streams"))
        return fleetCommand(flags, obs_ctx, journal.get());

    const std::string task =
        flags.count("task") ? flags.at("task") : "slam";
    WorkloadConfig wc;
    wc.scheme = schemeFromName(
        flags.count("scheme") ? flags.at("scheme") : "RP");
    wc.cycle_length =
        flags.count("cycle") ? std::stoi(flags.at("cycle")) : 10;
    // 1 = serial encode (default); 0 = one worker per hardware thread.
    wc.encoder_threads = flags.count("encoder-threads")
                             ? std::stoi(flags.at("encoder-threads"))
                             : 1;
    wc.decoder_threads = flags.count("decoder-threads")
                             ? std::stoi(flags.at("decoder-threads"))
                             : 1;
    wc.obs = &obs_ctx;
    wc.telemetry = journal.get();
    const int frames =
        flags.count("frames") ? std::stoi(flags.at("frames")) : 60;

    WorkloadRunBase base;
    std::string accuracy;
    if (task == "slam") {
        SlamSequenceConfig seq;
        seq.frames = frames;
        const SlamRunResult r = runSlamWorkload(seq, wc);
        base = r;
        accuracy = "ATE " + fmtDouble(r.metrics.ate_mean * 1000, 1) +
                   " mm, RPE-t " +
                   fmtDouble(r.metrics.rpe_trans_mean * 1000, 1) + " mm";
    } else if (task == "face") {
        FaceSequenceConfig seq;
        seq.frames = frames;
        const DetectionRunResult r = runFaceWorkload(seq, wc);
        base = r;
        accuracy = "mAP " + fmtDouble(r.map_percent, 1) + "%, F1 " +
                   fmtDouble(r.f1_percent, 1) + "%";
    } else if (task == "pose") {
        PoseSequenceConfig seq;
        seq.frames = frames;
        const DetectionRunResult r = runPoseWorkload(seq, wc);
        base = r;
        accuracy = "mAP " + fmtDouble(r.map_percent, 1) + "%, F1 " +
                   fmtDouble(r.f1_percent, 1) + "%";
    } else {
        std::cerr << "unknown task: " << task << "\n";
        usage();
    }

    double kept = 0.0;
    for (double k : base.kept_per_frame)
        kept += k;
    kept /= static_cast<double>(base.kept_per_frame.size());

    std::cout << base.scheme_name << " on " << task << " (" << base.width
              << "x" << base.height << ", "
              << base.kept_per_frame.size() << " frames)\n";
    std::cout << "  accuracy:   " << accuracy << "\n";
    std::cout << "  kept:       " << fmtDouble(100.0 * kept, 1) << "%\n";
    std::cout << "  DDR:        "
              << fmtDouble(base.pipeline_traffic.throughputMBps(base.fps),
                           1)
              << " MB/s, footprint "
              << fmtDouble(base.pipeline_traffic.footprintMB(), 2)
              << " MB\n";

    if (flags.count("region-trace-out")) {
        TraceFile file;
        file.width = base.width;
        file.height = base.height;
        file.trace = base.trace;
        writeTraceFile(flags.at("region-trace-out"), file);
        std::cout << "  trace:      " << flags.at("region-trace-out")
                  << " (" << file.trace.size() << " frames)\n";
    }
    if (journal) {
        journal->flush();
        std::cout << "  journal:    " << flags.at("journal-out") << " ("
                  << journal->totals().frames << " frames)\n";
    }
    exportObs(flags, obs_ctx);
    return 0;
}

int
replayCommand(const std::map<std::string, std::string> &flags)
{
    if (!flags.count("trace"))
        usage();
    obs::ObsContext obs_ctx;
    applyObsFlags(flags, obs_ctx);
    const TraceFile file = readTraceFile(flags.at("trace"));

    ThroughputConfig tc;
    tc.width = flags.count("width") ? std::stoi(flags.at("width"))
                                    : file.width;
    tc.height = flags.count("height") ? std::stoi(flags.at("height"))
                                      : file.height;
    tc.fps = flags.count("fps") ? std::stod(flags.at("fps")) : 30.0;

    const RegionTrace trace =
        (tc.width == file.width && tc.height == file.height)
            ? file.trace
            : scaleTrace(file.trace, file.width, file.height, tc.width,
                         tc.height);

    const CaptureScheme scheme = schemeFromName(
        flags.count("scheme") ? flags.at("scheme") : "RP");
    ThroughputSimulator sim(tc);
    sim.attachObs(&obs_ctx);
    const ThroughputResult r = sim.evaluate(scheme, trace);

    std::cout << schemeName(scheme) << " replay of "
              << flags.at("trace") << " at " << tc.width << "x"
              << tc.height << " @ " << tc.fps << " fps\n";
    std::cout << "  throughput: " << fmtDouble(r.throughput_mbps, 1)
              << " MB/s (write " << fmtDouble(r.write_mbps, 1)
              << ", read " << fmtDouble(r.read_mbps, 1) << ")\n";
    std::cout << "  footprint:  " << fmtDouble(r.footprint_mb, 2)
              << " MB mean, " << fmtDouble(r.footprint_peak_mb, 2)
              << " MB peak\n";
    std::cout << "  kept:       "
              << fmtDouble(100.0 * r.kept_fraction, 1) << "%\n";
    exportObs(flags, obs_ctx);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string command = argv[1];
    try {
        if (command == "run")
            return runCommand(parseFlags(argc, argv, 2));
        if (command == "replay")
            return replayCommand(parseFlags(argc, argv, 2));
    } catch (const std::exception &e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    usage();
}
