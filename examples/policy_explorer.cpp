/**
 * @file
 * Policy explorer: sweeps the cycle length of the example policy (§4.3.1)
 * on the V-SLAM workload and prints the efficiency/accuracy trade-off
 * curve, plus the per-frame pixel progression of one cycle window
 * (the Fig. 10-15 style view).
 *
 * Run:  ./policy_explorer [frames]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiments.hpp"
#include "sim/workload.hpp"

using namespace rpx;

int
main(int argc, char **argv)
{
    SlamSequenceConfig seq;
    seq.frames = argc > 1 ? std::atoi(argv[1]) : 60;

    std::cout << "Cycle-length sweep (V-SLAM, " << seq.frames
              << " frames)\n\n";
    TextTable table({"cycle", "ATE(mm)", "kept%", "DDR MB/s"});

    std::vector<double> sample_window;
    for (int cl : {2, 5, 10, 15, 20}) {
        WorkloadConfig wc;
        wc.scheme = CaptureScheme::RP;
        wc.cycle_length = cl;
        const SlamRunResult run = runSlamWorkload(seq, wc);

        double kept = 0.0;
        for (double k : run.kept_per_frame)
            kept += k;
        kept /= static_cast<double>(run.kept_per_frame.size());
        if (cl == 10)
            sample_window.assign(
                run.kept_per_frame.begin(),
                run.kept_per_frame.begin() +
                    std::min<size_t>(11, run.kept_per_frame.size()));

        table.addRow({
            std::to_string(cl),
            fmtDouble(run.metrics.ate_mean * 1000.0, 1),
            fmtDouble(100.0 * kept, 1),
            fmtDouble(run.pipeline_traffic.throughputMBps(run.fps), 1),
        });
    }
    std::cout << table.render();

    std::cout << "\nPer-frame pixels captured across one CL=10 window "
                 "(Fig. 10-15 style):\n  ";
    for (double k : sample_window)
        std::cout << fmtDouble(100.0 * k, 0) << "% ";
    std::cout << "\n";
    return 0;
}
