/**
 * @file
 * Quickstart: the minimal end-to-end use of the rhythmic pixel regions
 * library.
 *
 * 1. Build a synthetic frame.
 * 2. Declare region labels with the developer API (SetRegionLabels).
 * 3. Push frames through the full pipeline (encoder -> DRAM -> decoder).
 * 4. Inspect traffic savings and reconstruction quality.
 *
 * Run:  ./quickstart
 */

#include <cmath>
#include <iostream>

#include "common/rng.hpp"
#include "frame/draw.hpp"
#include "frame/metrics.hpp"
#include "sim/experiments.hpp"
#include "sim/pipeline.hpp"
#include "sim/report.hpp"

using namespace rpx;

int
main()
{
    constexpr i32 kWidth = 640;
    constexpr i32 kHeight = 480;

    // A synthetic scene: noisy background with two textured "objects".
    Rng rng(7);
    Image scene(kWidth, kHeight, PixelFormat::Gray8);
    fillValueNoise(scene, rng, 60.0, 90, 130);
    Image object_a(96, 96, PixelFormat::Gray8);
    fillCheckerboard(object_a, 8, 40, 220);
    Image object_b(72, 72, PixelFormat::Gray8);
    fillGradient(object_b, 0, 255);
    blit(scene, object_a, 120, 140);
    blit(scene, object_b, 420, 260);

    // Wire the full pipeline at 640x480 @ 30 fps.
    PipelineConfig pc;
    pc.width = kWidth;
    pc.height = kHeight;
    VisionPipeline pipeline(pc);

    // The developer API of §4.3: one dense region on the moving object,
    // one half-resolution region on the slow object, refreshed every other
    // frame.
    std::vector<RegionLabel> labels = {
        {100, 120, 140, 140, /*stride=*/1, /*skip=*/1},
        {400, 240, 120, 120, /*stride=*/2, /*skip=*/2},
    };
    pipeline.runtime().setRegionLabels(labels);

    std::cout << "frame  kept%   write(KB)  read(KB)  footprint(KB)  "
                 "PSNR-in-regions(dB)\n";
    for (int t = 0; t < 6; ++t) {
        const PipelineFrameResult frame = pipeline.processFrame(scene);

        // Reconstruction fidelity inside the declared regions.
        const double err_a =
            mseInRect(scene, frame.decoded, Rect{100, 120, 140, 140});
        const double psnr_a =
            err_a > 0 ? 10.0 * std::log10(255.0 * 255.0 / err_a) : 99.0;

        std::cout << "  " << t << "    "
                  << fmtDouble(100.0 * frame.kept_fraction, 1) << "   "
                  << frame.traffic.bytes_written / 1024 << "        "
                  << frame.traffic.bytes_read / 1024 << "        "
                  << frame.traffic.footprint / 1024 << "          "
                  << psnr_a << "\n";
    }

    // Compare against frame-based capture.
    const auto &traffic = pipeline.traffic();
    const double full_bytes = static_cast<double>(kWidth) * kHeight *
                              static_cast<double>(traffic.frames) * 2.0;
    const double rp_bytes = static_cast<double>(
        traffic.bytes_written + traffic.bytes_read +
        traffic.metadata_bytes);
    std::cout << "\nDDR pixel traffic vs frame-based: "
              << 100.0 * (1.0 - rp_bytes / full_bytes)
              << "% saved over " << traffic.frames << " frames\n";

    // The decoder also answers raw pixel transactions (the PMMU path).
    auto &decoder = pipeline.decoder();
    const auto row = decoder.requestPixels(120, 150, 64);
    std::cout << "PMMU row request returned " << row.size()
              << " pixels; avg transaction latency "
              << decoder.avgLatencyNs() << " ns\n";

    // Fig. 2-style view of the capture pattern: the EncMask of the most
    // recent frame ('#' encoded, ':' strided, 's' skipped, '.' empty).
    std::cout << "\nEncMask of the last frame (1 char = 32x32 px):\n"
              << maskToAscii(pipeline.frameStore().recent(0)->mask, 32);

    // Full end-of-run statistics dump.
    std::cout << "\n" << pipelineReport(pipeline);
    return 0;
}
